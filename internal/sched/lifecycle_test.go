package sched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

func TestRemoveAcrossSchedulers(t *testing.T) {
	builders := []struct {
		name  string
		build func() Scheduler
	}{
		{"credit", func() Scheduler { return NewCredit(CreditConfig{}) }},
		{"sedf", func() Scheduler { return NewSEDF(SEDFConfig{DefaultExtratime: true}) }},
		{"credit2", func() Scheduler { return NewCredit2() }},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			s := b.build()
			v1 := busyVM(t, 1, vm.Config{Name: "a", Credit: 30})
			v2 := busyVM(t, 2, vm.Config{Name: "b", Credit: 30})
			if err := s.Add(v1); err != nil {
				t.Fatal(err)
			}
			if err := s.Add(v2); err != nil {
				t.Fatal(err)
			}
			if err := s.Remove(1); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if err := s.Remove(1); !errors.Is(err, ErrUnknownVM) {
				t.Errorf("second Remove = %v, want ErrUnknownVM", err)
			}
			vms := s.VMs()
			if len(vms) != 1 || vms[0].ID() != 2 {
				t.Errorf("VMs after remove = %v", vms)
			}
			// The removed VM is never picked again; the survivor runs.
			busy := runQuanta(s, sim.Second)
			if busy[1] != 0 {
				t.Errorf("removed VM ran for %v", busy[1])
			}
			if busy[2] == 0 {
				t.Error("surviving VM never ran")
			}
			// Re-adding the removed id works (e.g. migration back).
			if err := s.Add(busyVM(t, 1, vm.Config{Name: "a2", Credit: 30})); err != nil {
				t.Errorf("re-Add after Remove: %v", err)
			}
		})
	}
}

func TestPausedVMGetsNoCPU(t *testing.T) {
	s := NewCredit(CreditConfig{})
	v := busyVM(t, 1, vm.Config{Name: "V", Credit: 50})
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	v.Pause()
	if !v.Paused() {
		t.Fatal("Paused() false after Pause")
	}
	busy := runQuanta(s, sim.Second)
	if busy[1] != 0 {
		t.Errorf("paused VM ran for %v", busy[1])
	}
	v.Resume()
	busy = runQuanta(s, sim.Second)
	if busy[1] == 0 {
		t.Error("resumed VM never ran")
	}
}

func TestQuickCreditSharesMatchCaps(t *testing.T) {
	// Property: for arbitrary cap vectors summing to <= 100, every
	// always-busy VM's long-run share equals its cap within quantization.
	f := func(raw [3]uint8) bool {
		caps := make([]float64, 3)
		sum := 0.0
		for i, r := range raw {
			caps[i] = float64(r%30) + 3 // 3..32 each, sum <= 96
			sum += caps[i]
		}
		if sum > 100 {
			return true
		}
		s := NewCredit(CreditConfig{})
		vms := make([]*vm.VM, 3)
		for i, c := range caps {
			v, err := vm.New(vm.ID(i+1), vm.Config{Credit: c})
			if err != nil {
				return false
			}
			v.SetWorkload(&workload.Hog{})
			vms[i] = v
			if err := s.Add(v); err != nil {
				return false
			}
		}
		const total = 3 * sim.Second
		busy := runQuanta(s, total)
		for i, c := range caps {
			got := share(busy, vm.ID(i+1), total) * 100
			if math.Abs(got-c) > 1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickSEDFWorkConservation(t *testing.T) {
	// Property: with at least one always-busy extratime VM, the SEDF
	// processor never idles, whatever the slice configuration.
	f := func(raw [2]uint8) bool {
		s := NewSEDF(SEDFConfig{DefaultExtratime: true})
		for i, r := range raw {
			v, err := vm.New(vm.ID(i+1), vm.Config{Credit: float64(r%40) + 5})
			if err != nil {
				return false
			}
			v.SetWorkload(&workload.Hog{})
			if err := s.Add(v); err != nil {
				return false
			}
		}
		const total = sim.Second
		busy := runQuanta(s, total)
		var sum sim.Time
		for _, b := range busy {
			sum += b
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickCapNeverExceededUnderRandomLoad(t *testing.T) {
	// Property: a capped VM's share never exceeds its cap (plus one
	// quantum of quantization) even when its workload flaps on and off.
	f := func(pattern []bool, capRaw uint8) bool {
		cap := float64(capRaw%60) + 10
		s := NewCredit(CreditConfig{})
		v, err := vm.New(1, vm.Config{Credit: cap})
		if err != nil {
			return false
		}
		hog := &workload.Hog{}
		v.SetWorkload(hog)
		if err := s.Add(v); err != nil {
			return false
		}
		busy := sim.Time(0)
		now := sim.Time(0)
		const steps = 3000
		for i := 0; i < steps; i++ {
			if len(pattern) > 0 && !pattern[i%len(pattern)] {
				v.Pause()
			} else {
				v.Resume()
			}
			picked := s.Pick(now)
			now += sim.Millisecond
			if picked != nil {
				s.Charge(picked, sim.Millisecond, now)
				busy += sim.Millisecond
			}
			s.Tick(now)
		}
		shareGot := float64(busy) / float64(now) * 100
		return shareGot <= cap+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
