package sched

import (
	"fmt"
	"sort"

	"pasched/internal/sim"
	"pasched/internal/vm"
)

// DefaultSEDFPeriod is the default reservation period for VMs whose SEDF
// parameters are derived from their credit.
const DefaultSEDFPeriod = 100 * sim.Millisecond

// SEDFParams is the per-VM (s, p, b) triplet of the Xen SEDF scheduler
// (Section 3.1): the VM is guaranteed Slice of CPU time in every Period,
// and Extratime marks it eligible for slices other VMs leave unused.
type SEDFParams struct {
	Slice     sim.Time
	Period    sim.Time
	Extratime bool
}

// Validate checks the parameter invariants.
func (p SEDFParams) Validate() error {
	if p.Period <= 0 {
		return fmt.Errorf("sched: sedf period must be positive, got %v", p.Period)
	}
	if p.Slice < 0 || p.Slice > p.Period {
		return fmt.Errorf("sched: sedf slice %v outside [0, period %v]", p.Slice, p.Period)
	}
	return nil
}

// SEDFConfig configures the SEDF scheduler.
type SEDFConfig struct {
	// DefaultPeriod is the period used when deriving parameters from a
	// VM's credit. Zero selects DefaultSEDFPeriod.
	DefaultPeriod sim.Time
	// DefaultExtratime is the extratime flag for derived parameters. The
	// paper uses SEDF as its variable-credit scheduler, i.e. with
	// extratime enabled.
	DefaultExtratime bool
}

// sedfState is the per-VM runtime state: the current deadline and the CPU
// time still owed within the current period. It is slice-backed (parallel
// to vms) so the per-quantum Pick/Charge path involves no map operations.
//
// All accounting is exact integer microseconds, mirroring Credit2's
// rational style (and Xen's own nanosecond accounting): remaining slice
// time only ever has integer charges subtracted from it, so one bulk
// batched Charge of n quanta lands on bit-identical state as n
// per-quantum charges, which is what lets BatchPick/BatchPattern certify
// folds against reference stepping with exact equality.
type sedfState struct {
	params    SEDFParams
	deadline  sim.Time
	remaining int64    // microseconds of slice time still owed this period
	extraUsed sim.Time // CPU time consumed as extratime, cumulative
}

// SEDF is the Xen Simple Earliest Deadline First scheduler model. With the
// extratime flag it is the paper's variable-credit scheduler: each VM's
// credit is guaranteed when it has load, and unused slices are shared among
// extratime-eligible VMs.
type SEDF struct {
	cfg     SEDFConfig
	vms     []*vm.VM
	st      []sedfState // parallel to vms
	byID    map[vm.ID]int
	rrExtra rrQueue
}

var (
	_ Scheduler        = (*SEDF)(nil)
	_ CapSetter        = (*SEDF)(nil)
	_ BoundaryReporter = (*SEDF)(nil)
	_ Batcher          = (*SEDF)(nil)
	_ PatternBatcher   = (*SEDF)(nil)
	_ Throttler        = (*SEDF)(nil)
)

// Throttled implements Throttler: a VM whose slice is exhausted and
// that is not extratime-eligible is barred until its deadline rolls.
func (s *SEDF) Throttled(v *vm.VM) bool {
	idx := IndexOf(s.vms, v)
	if idx < 0 {
		return false
	}
	return s.st[idx].remaining <= 0 && !s.st[idx].params.Extratime
}

// NewSEDF returns an SEDF scheduler with the given configuration.
func NewSEDF(cfg SEDFConfig) *SEDF {
	if cfg.DefaultPeriod <= 0 {
		cfg.DefaultPeriod = DefaultSEDFPeriod
	}
	return &SEDF{
		cfg:  cfg,
		byID: make(map[vm.ID]int),
	}
}

// Name implements Scheduler.
func (s *SEDF) Name() string { return "sedf" }

// Add implements Scheduler, deriving (s, p, b) from the VM's credit: a VM
// with credit k% receives a slice of k% of the default period.
func (s *SEDF) Add(v *vm.VM) error {
	if v == nil {
		return fmt.Errorf("sched: add nil VM")
	}
	p := SEDFParams{
		Slice:     sim.Time(v.Credit() / 100 * float64(s.cfg.DefaultPeriod)),
		Period:    s.cfg.DefaultPeriod,
		Extratime: s.cfg.DefaultExtratime,
	}
	return s.AddWithParams(v, p)
}

// AddWithParams registers a VM with an explicit (s, p, b) triplet.
func (s *SEDF) AddWithParams(v *vm.VM, p SEDFParams) error {
	if err := checkAdd(s.byID, v); err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}
	s.byID[v.ID()] = len(s.vms)
	s.vms = append(s.vms, v)
	s.st = append(s.st, sedfState{
		params:    p,
		deadline:  p.Period,
		remaining: int64(p.Slice),
	})
	return nil
}

// Params returns the VM's current SEDF parameters.
func (s *SEDF) Params(id vm.ID) (SEDFParams, error) {
	idx, ok := s.byID[id]
	if !ok {
		return SEDFParams{}, fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	return s.st[idx].params, nil
}

// Remove implements Scheduler.
func (s *SEDF) Remove(id vm.ID) error {
	idx, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	delete(s.byID, id)
	s.vms = spliceVM(s.vms, idx)
	s.st = spliceState(s.st, idx)
	reindexAfterRemove(s.byID, idx)
	return nil
}

// VMs implements Scheduler.
func (s *SEDF) VMs() []*vm.VM {
	out := make([]*vm.VM, len(s.vms))
	copy(out, s.vms)
	return out
}

// Pick implements Scheduler: earliest-deadline-first among runnable VMs
// that still hold slice time; otherwise round-robin among runnable
// extratime-eligible VMs.
func (s *SEDF) Pick(_ sim.Time) *vm.VM {
	var best *vm.VM
	var bestDeadline sim.Time
	for i, v := range s.vms {
		if !v.Runnable() {
			continue
		}
		st := &s.st[i]
		if st.remaining <= 0 {
			continue
		}
		if best == nil || st.deadline < bestDeadline {
			best = v
			bestDeadline = st.deadline
		}
	}
	if best != nil {
		return best
	}
	// Extratime distribution: the variable-credit behaviour.
	if i := s.rrExtra.next(len(s.vms), func(i int) bool {
		return s.vms[i].Runnable() && s.st[i].params.Extratime
	}); i >= 0 {
		return s.vms[i]
	}
	return nil
}

// Charge implements Scheduler.
func (s *SEDF) Charge(v *vm.VM, busy sim.Time, _ sim.Time) {
	if v == nil || busy <= 0 {
		return
	}
	idx := IndexOf(s.vms, v)
	if idx < 0 {
		return
	}
	st := &s.st[idx]
	if st.remaining > 0 {
		st.remaining -= int64(busy)
		return
	}
	st.extraUsed += busy
}

// Tick implements Scheduler: it rolls deadlines forward and replenishes
// slices at each VM's period boundary.
func (s *SEDF) Tick(now sim.Time) {
	for i := range s.st {
		st := &s.st[i]
		for st.deadline <= now {
			st.deadline += st.params.Period
			st.remaining = int64(st.params.Slice)
		}
	}
}

// NextBoundary implements BoundaryReporter: the earliest deadline, where
// a slice replenishment changes who Pick prefers.
func (s *SEDF) NextBoundary(sim.Time) sim.Time {
	next := sim.Never
	for i := range s.st {
		if s.st[i].deadline < next {
			next = s.st[i].deadline
		}
	}
	return next
}

// BatchPick implements Batcher. With v the only runnable VM, EDF keeps
// selecting it while its slice lasts, and afterwards through the
// extratime round-robin; without the extratime flag an exhausted slice
// idles the processor until the next deadline, which NextBoundary keeps
// outside the offered stretch.
func (s *SEDF) BatchPick(v *vm.VM, quantum sim.Time, max int, _ sim.Time) (int, bool) {
	if v == nil || max <= 0 || quantum <= 0 || !v.Runnable() {
		return 0, false
	}
	idx := IndexOf(s.vms, v)
	if idx < 0 {
		return 0, false
	}
	st := &s.st[idx]
	if st.remaining > 0 {
		n := int(st.remaining / int64(quantum))
		if n > max {
			n = max
		}
		if n < 1 {
			return 0, false
		}
		return n, false
	}
	if st.params.Extratime {
		s.rrExtra.last = idx
		return max, false
	}
	return max, true
}

// BatchPattern implements PatternBatcher. Between deadline boundaries
// (which NextBoundary keeps outside the offered stretch) the EDF order is
// frozen, so a contended stretch is sequential, not interleaved: the
// earliest-deadline VM holding slice time runs until its slice crosses
// zero (ceil(remaining/quantum) picks — the crossing pick still runs a
// full quantum, exactly as the reference does), then the next-earliest,
// and so on. Every certified pick happens with the VM's slice still
// positive, so the per-VM bulk Charge lands in the slice branch exactly
// like the per-quantum charges would. The pattern is cut where a quota
// stops a VM short of exhausting its slice (EDF cannot move past it) and
// never extends into the extratime phase, so no VM is charged across the
// slice/extratime branch switch. When no runnable VM holds slice time the
// pattern is instead whole round-robin rotations over runnable extratime
// VMs (all charges land in the extratime branch), and with no extratime
// VM either, the whole stretch provably idles.
func (s *SEDF) BatchPattern(quota []PatternQuota, quantum sim.Time, max int, _ sim.Time) ([]PatternPick, bool) {
	if quantum <= 0 || max <= 0 {
		return nil, false
	}
	type cand struct {
		idx      int
		deadline sim.Time
	}
	var cands []cand
	anyRunnable := false
	for i, v := range s.vms {
		if !v.Runnable() {
			continue
		}
		anyRunnable = true
		if s.st[i].remaining > 0 {
			cands = append(cands, cand{i, s.st[i].deadline})
		}
	}
	if len(cands) > 0 {
		// Ties keep registration order: Pick's strict < scan serves the
		// lowest index first, which the stable sort preserves.
		sort.SliceStable(cands, func(a, b int) bool {
			return cands[a].deadline < cands[b].deadline
		})
		left := max
		var picks []PatternPick
		total := 0
		for _, cd := range cands {
			if left == 0 {
				break
			}
			k := int(ceilDiv(s.st[cd.idx].remaining, int64(quantum)))
			take := k
			if q := patternQuotaFor(quota, s.vms[cd.idx]); q < take {
				take = q
			}
			if left < take {
				take = left
			}
			if take > 0 {
				picks = append(picks, PatternPick{VM: s.vms[cd.idx], Quanta: take})
				total += take
				left -= take
			}
			if take < k {
				break // the VM keeps slice time, so EDF cannot move past it
			}
		}
		if total < 2 {
			return nil, false
		}
		return picks, false
	}
	if !anyRunnable {
		return nil, false
	}
	// Extratime phase: whole rotations, every member one quantum each.
	eligible := func(i int) bool {
		return s.vms[i].Runnable() && s.st[i].params.Extratime
	}
	hasExtra := false
	for i := range s.vms {
		if eligible(i) {
			hasExtra = true
			break
		}
	}
	if !hasExtra {
		// Runnable VMs without extratime and without slice time idle the
		// processor until the next deadline, beyond the stretch.
		return nil, true
	}
	return rotationPattern(s.vms, &s.rrExtra, quota, max, eligible, nil), false
}

// SetCap implements CapSetter by resizing the VM's slice to pct percent of
// its period, which lets PAS-style credit compensation drive SEDF too.
func (s *SEDF) SetCap(id vm.ID, pct float64) error {
	idx, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	if pct < 0 {
		return fmt.Errorf("sched: negative cap %v for VM %d", pct, id)
	}
	if pct > 100 {
		pct = 100 // a slice cannot exceed its period
	}
	st := &s.st[idx]
	old := st.params.Slice
	st.params.Slice = sim.Time(pct / 100 * float64(st.params.Period))
	st.remaining += int64(st.params.Slice - old)
	return nil
}

// Cap implements CapSetter.
func (s *SEDF) Cap(id vm.ID) (float64, error) {
	idx, ok := s.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	return float64(s.st[idx].params.Slice) / float64(s.st[idx].params.Period) * 100, nil
}

// ExtratimeUsed returns the cumulative CPU time the VM received beyond its
// guaranteed slices.
func (s *SEDF) ExtratimeUsed(id vm.ID) (sim.Time, error) {
	idx, ok := s.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	return s.st[idx].extraUsed, nil
}
