package sched

import (
	"testing"

	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// credit2Snapshot captures the scheduler-internal state. VMs are shared
// pointers: neither BatchPattern nor Pick/Charge touches workload state
// (the caller performs Consume), so restoring a snapshot replays the exact
// same scheduling decisions on the live VM set.
type credit2Snapshot struct {
	vms   []*vm.VM
	st    []credit2State
	vcNum int64
	vcDen int64
}

func snapshotCredit2(c *Credit2) credit2Snapshot {
	return credit2Snapshot{
		vms:   append([]*vm.VM(nil), c.vms...),
		st:    append([]credit2State(nil), c.st...),
		vcNum: c.vcNum,
		vcDen: c.vcDen,
	}
}

// restoreCredit2 builds a fresh scheduler from a snapshot, sharing the VM
// pointers but owning its own state slices.
func restoreCredit2(s credit2Snapshot) *Credit2 {
	c := NewCredit2()
	c.vms = append(c.vms, s.vms...)
	c.st = append(c.st, s.st...)
	for i, v := range c.vms {
		c.byID[v.ID()] = i
	}
	c.vcNum, c.vcDen = s.vcNum, s.vcDen
	return c
}

func sameCredit2State(a credit2Snapshot, c *Credit2) bool {
	if len(a.vms) != len(c.vms) || a.vcNum != c.vcNum || a.vcDen != c.vcDen {
		return false
	}
	for i := range a.vms {
		if a.vms[i] != c.vms[i] || a.st[i] != c.st[i] {
			return false
		}
	}
	return true
}

// checkCredit2Invariants asserts the structural invariants random
// lifecycles must never break: registry/slice consistency, clamped
// weights, non-negative runtimes and a positive vclock denominator.
func checkCredit2Invariants(t *testing.T, c *Credit2) {
	t.Helper()
	if len(c.vms) != len(c.st) || len(c.vms) != len(c.byID) {
		t.Fatalf("state skew: %d vms, %d st, %d byID", len(c.vms), len(c.st), len(c.byID))
	}
	for id, i := range c.byID {
		if i < 0 || i >= len(c.vms) || c.vms[i].ID() != id {
			t.Fatalf("byID[%d]=%d does not match slice %v", id, i, c.vms)
		}
	}
	for i, st := range c.st {
		if st.weight < credit2MinWeight || st.weight > credit2MaxWeight {
			t.Fatalf("VM %d weight %d outside [%d,%d]", c.vms[i].ID(), st.weight,
				credit2MinWeight, credit2MaxWeight)
		}
		if st.runtime < 0 {
			t.Fatalf("VM %d negative runtime %d", c.vms[i].ID(), st.runtime)
		}
	}
	if c.vcDen < 1 {
		t.Fatalf("vclock denominator %d", c.vcDen)
	}
}

// checkCredit2LagBound asserts that after a Pick no runnable VM lags the
// vclock by more than maxLag of virtual time — the wake-up clamp's
// contract (vruntime >= vclock - maxLag, cross-multiplied).
func checkCredit2LagBound(t *testing.T, c *Credit2) {
	t.Helper()
	floorNum := c.vcNum - int64(c.maxLag)*c.vcDen
	for i, v := range c.vms {
		if !v.Runnable() {
			continue
		}
		if c.st[i].runtime*c.vcDen < floorNum*c.st[i].weight {
			t.Fatalf("VM %d vruntime lag beyond maxLag: runtime %d weight %d vclock %d/%d",
				v.ID(), c.st[i].runtime, c.st[i].weight, c.vcNum, c.vcDen)
		}
	}
}

// FuzzCredit2Lifecycle drives random Add/Remove/pause/run/charge/batch
// sequences against Credit2 and checks, after every operation, that the
// scheduler never panics, keeps its registry and slices consistent, never
// lets a runnable VM lag the vclock beyond maxLag, and — whenever a
// pattern certifies — that the batched tallies, the bulk charges and the
// committed vclock land on bit-identical state as quantum-by-quantum
// reference picking (and that a declined pattern commits nothing).
func FuzzCredit2Lifecycle(f *testing.F) {
	f.Add([]byte{0x00, 0x18, 0x02, 0x23, 0x04, 0x30, 0x0b, 0x3f})
	f.Add([]byte{0x00, 0x08, 0x00, 0x10, 0x01, 0x05, 0x1c, 0x02, 0x24, 0x18, 0x04})
	f.Add([]byte{0x00, 0xff, 0x00, 0x00, 0x03, 0x20, 0x04, 0x04, 0x01, 0x00, 0x04})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		c := NewCredit2()
		now := sim.Time(0)
		nextID := vm.ID(1)
		for k := 0; k+1 < len(ops); k += 2 {
			op, arg := ops[k], int(ops[k+1])
			switch op % 6 {
			case 0: // add a VM, weights spanning both bound edges
				if len(c.vms) >= 8 {
					break
				}
				weight := arg * arg // 0..65025: crosses the 4096 weight bound
				v, err := vm.New(nextID, vm.Config{Weight: weight})
				if err != nil {
					t.Fatal(err)
				}
				nextID++
				if arg%4 != 0 {
					v.SetWorkload(&workload.Hog{})
				}
				if err := c.Add(v); (weight > credit2MaxWeight) != (err != nil) {
					t.Fatalf("Add with weight %d: err=%v", weight, err)
				}
			case 1: // remove a VM
				if len(c.vms) == 0 {
					break
				}
				if err := c.Remove(c.vms[arg%len(c.vms)].ID()); err != nil {
					t.Fatal(err)
				}
			case 2: // flip pause state / wake an idle VM
				if len(c.vms) == 0 {
					break
				}
				v := c.vms[arg%len(c.vms)]
				switch {
				case v.Paused():
					v.Resume()
				case arg%2 == 0:
					v.Pause()
				default:
					v.SetWorkload(&workload.Hog{})
				}
			case 3: // run reference quanta
				for j := 0; j < arg%32; j++ {
					v := c.Pick(now)
					now += quantum
					if v != nil {
						c.Charge(v, quantum, now)
					}
					checkCredit2LagBound(t, c)
					c.Tick(now)
				}
			case 4: // differential: batched pattern vs reference picking
				snap := snapshotCredit2(c)
				quota := make([]PatternQuota, 0, len(c.vms))
				for j, v := range c.vms {
					if !v.Runnable() {
						continue
					}
					quota = append(quota, PatternQuota{VM: v, MaxPicks: (arg + j*37) % 200})
				}
				max := 2 + arg%128
				picks, idle := c.BatchPattern(quota, quantum, max, now)
				if idle {
					t.Fatalf("Credit2 certified an idle stretch: quota=%v", quota)
				}
				if picks == nil {
					if !sameCredit2State(snap, c) {
						t.Fatal("declined pattern committed state")
					}
					break
				}
				total := 0
				for _, p := range picks {
					if p.VM == nil || p.Quanta <= 0 {
						t.Fatalf("invalid pattern pick %+v", p)
					}
					total += p.Quanta
				}
				if total < 2 || total > max {
					t.Fatalf("pattern covers %d quanta of %d offered", total, max)
				}
				end := now + sim.Time(total)*quantum
				for _, p := range picks {
					c.Charge(p.VM, sim.Time(p.Quanta)*quantum, end)
				}
				ref := restoreCredit2(snap)
				got := make(map[vm.ID]int)
				refNow := now
				for j := 0; j < total; j++ {
					v := ref.Pick(refNow)
					if v == nil {
						t.Fatalf("reference idled inside a certified %d-quanta pattern", total)
					}
					got[v.ID()]++
					refNow += quantum
					ref.Charge(v, quantum, refNow)
				}
				for _, p := range picks {
					if got[p.VM.ID()] != p.Quanta {
						t.Fatalf("tally mismatch for VM %d: pattern %d reference %d",
							p.VM.ID(), p.Quanta, got[p.VM.ID()])
					}
					delete(got, p.VM.ID())
				}
				if len(got) != 0 {
					t.Fatalf("reference picked VMs outside the pattern: %v", got)
				}
				if !sameCredit2State(snapshotCredit2(ref), c) {
					t.Fatalf("batched state diverges from reference:\n batched %+v %d/%d\n reference %+v %d/%d",
						c.st, c.vcNum, c.vcDen, ref.st, ref.vcNum, ref.vcDen)
				}
				now = end
			case 5: // partial charge (a draining tail quantum)
				if len(c.vms) == 0 {
					break
				}
				c.Charge(c.vms[arg%len(c.vms)], sim.Time(arg)*sim.Microsecond, now)
			}
			checkCredit2Invariants(t, c)
		}
	})
}
