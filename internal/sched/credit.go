package sched

import (
	"fmt"

	"pasched/internal/sim"
	"pasched/internal/vm"
)

// DefaultCreditPeriod is the credit accounting period, matching Xen's 30 ms
// accounting interval.
const DefaultCreditPeriod = 30 * sim.Millisecond

// CreditConfig configures the Credit scheduler.
type CreditConfig struct {
	// Period is the accounting period at which credits are refilled.
	// Zero selects DefaultCreditPeriod.
	Period sim.Time
	// WorkConserving, when true, lets capped VMs that exhausted their
	// budget consume otherwise-idle time. Xen's Credit scheduler does NOT
	// do this (a cap is a hard limit); the option exists for experiments
	// that need a work-conserving credit baseline.
	WorkConserving bool
}

// creditState is the per-VM accounting, slice-backed (parallel to vms) so
// the per-quantum Pick/Charge path involves no map operations.
//
// The cap percentage is a float policy input (PAS hands down compensated
// fractional credits); it is converted to an integer-microsecond refill
// exactly once per SetCap, and from there every budget movement is
// integer arithmetic — charges subtract the busy microseconds, refills
// add the precomputed refill — so bulk batched charges and per-quantum
// charges land on bit-identical budgets.
type creditState struct {
	cap    float64 // current cap percentage; 0 = uncapped
	refill int64   // microseconds granted per period, derived from cap
	budget int64   // microseconds left in the current period
	used   int64   // microseconds consumed in the current period
}

// Credit is the Xen Credit scheduler model: proportional share with hard
// caps. With a cap equal to its credit, a VM behaves exactly as the paper's
// "fix credit scheduler": its credit is always guaranteed but never
// exceeded. A VM created with zero credit has no cap and consumes only
// slices no budgeted VM wants (the paper's "null credit" special case).
type Credit struct {
	cfg  CreditConfig
	vms  []*vm.VM
	st   []creditState // parallel to vms
	byID map[vm.ID]int

	rrBudget   rrQueue
	rrUncapped rrQueue
	rrOverflow rrQueue
	nextRefill sim.Time
	tracer     Tracer
}

var (
	_ Scheduler        = (*Credit)(nil)
	_ CapSetter        = (*Credit)(nil)
	_ BoundaryReporter = (*Credit)(nil)
	_ Batcher          = (*Credit)(nil)
	_ PatternBatcher   = (*Credit)(nil)
	_ TraceSetter      = (*Credit)(nil)
	_ Throttler        = (*Credit)(nil)
)

// NewCredit returns a Credit scheduler with the given configuration.
func NewCredit(cfg CreditConfig) *Credit {
	if cfg.Period <= 0 {
		cfg.Period = DefaultCreditPeriod
	}
	return &Credit{
		cfg:        cfg,
		byID:       make(map[vm.ID]int),
		nextRefill: cfg.Period,
	}
}

// Name implements Scheduler.
func (c *Credit) Name() string { return "credit" }

// Add implements Scheduler. The VM's cap is initialized to its configured
// credit and its budget to one period's refill.
func (c *Credit) Add(v *vm.VM) error {
	if err := checkAdd(c.byID, v); err != nil {
		return err
	}
	c.byID[v.ID()] = len(c.vms)
	c.vms = append(c.vms, v)
	refill := c.refillMicros(v.Credit())
	c.st = append(c.st, creditState{cap: v.Credit(), refill: refill, budget: refill})
	return nil
}

// Remove implements Scheduler.
func (c *Credit) Remove(id vm.ID) error {
	idx, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	delete(c.byID, id)
	c.vms = spliceVM(c.vms, idx)
	c.st = spliceState(c.st, idx)
	reindexAfterRemove(c.byID, idx)
	return nil
}

// VMs implements Scheduler.
func (c *Credit) VMs() []*vm.VM {
	out := make([]*vm.VM, len(c.vms))
	copy(out, c.vms)
	return out
}

// refillMicros converts a cap percentage to one period's budget in
// integer microseconds — the single float-to-integer edge of the credit
// accounting (rounded to the nearest microsecond).
func (c *Credit) refillMicros(capPct float64) int64 {
	return int64(capPct/100*float64(c.cfg.Period) + 0.5)
}

// Pick implements Scheduler. Selection order:
//
//  1. Strict priority tiers, highest first: runnable capped VMs holding
//     budget, round-robin within the tier (Dom0 is served here).
//  2. Uncapped ("null credit") VMs, which absorb idle slack.
//  3. Only in work-conserving mode: capped VMs whose budget is exhausted.
func (c *Credit) Pick(now sim.Time) *vm.VM {
	// Pass 1: budgeted VMs by strict priority.
	best := -1
	bestPrio := 0
	// Find the highest priority tier that has an eligible VM, then
	// round-robin inside that tier.
	for i, v := range c.vms {
		if !v.Runnable() {
			continue
		}
		if c.st[i].cap <= 0 || c.st[i].budget <= 0 {
			continue
		}
		if best == -1 || v.Priority() > bestPrio {
			best = i
			bestPrio = v.Priority()
		}
	}
	if best >= 0 {
		i := c.rrBudget.next(len(c.vms), func(i int) bool {
			v := c.vms[i]
			return v.Runnable() && v.Priority() == bestPrio &&
				c.st[i].cap > 0 && c.st[i].budget > 0
		})
		if i >= 0 {
			return c.vms[i]
		}
	}
	// Pass 2: uncapped VMs.
	if i := c.rrUncapped.next(len(c.vms), func(i int) bool {
		return c.vms[i].Runnable() && c.st[i].cap <= 0
	}); i >= 0 {
		return c.vms[i]
	}
	// Pass 3: work-conserving overflow.
	if c.cfg.WorkConserving {
		if i := c.rrOverflow.next(len(c.vms), func(i int) bool {
			return c.vms[i].Runnable()
		}); i >= 0 {
			return c.vms[i]
		}
	}
	return nil
}

// Charge implements Scheduler.
func (c *Credit) Charge(v *vm.VM, busy sim.Time, now sim.Time) {
	if v == nil || busy <= 0 {
		return
	}
	idx := IndexOf(c.vms, v)
	if idx < 0 {
		return
	}
	before := c.st[idx].budget
	c.st[idx].budget -= int64(busy)
	c.st[idx].used += int64(busy)
	if c.tracer != nil && c.st[idx].cap > 0 && before > 0 && c.st[idx].budget <= 0 {
		c.tracer.TraceExhausted(now, v)
	}
}

// Tick implements Scheduler: it refills budgets at period boundaries.
// Unused budget does not carry over (a cap is an upper bound per period,
// not a savings account), but an overdraft does — a VM that ran slightly
// past its budget (scheduling is quantized) starts the next period owing
// the difference, exactly like a Xen vCPU going into the OVER state with
// negative credits. The carried debt is bounded to one period's refill so
// a work-conserving overflow cannot starve a VM indefinitely.
func (c *Credit) Tick(now sim.Time) {
	for c.nextRefill <= now {
		if c.tracer != nil {
			c.tracer.TraceRefill(c.nextRefill)
		}
		for i := range c.st {
			refill := c.st[i].refill
			b := c.st[i].budget + refill
			if b > refill {
				b = refill
			}
			if b < -refill {
				b = -refill
			}
			c.st[i].budget = b
			c.st[i].used = 0
		}
		c.nextRefill += c.cfg.Period
	}
}

// NextBoundary implements BoundaryReporter: the next budget refill.
func (c *Credit) NextBoundary(sim.Time) sim.Time { return c.nextRefill }

// BatchPick implements Batcher. With v the only runnable VM, Pick keeps
// selecting it while its budget lasts (or forever when it is uncapped or
// the scheduler is work-conserving); the quanta count is floored so a
// batched run never outlasts what quantum-by-quantum picking would grant.
// A capped VM that exhausted its budget idles until the next refill,
// which NextBoundary keeps outside the offered stretch.
func (c *Credit) BatchPick(v *vm.VM, quantum sim.Time, max int, _ sim.Time) (int, bool) {
	if v == nil || max <= 0 || quantum <= 0 || !v.Runnable() {
		return 0, false
	}
	idx := IndexOf(c.vms, v)
	if idx < 0 {
		return 0, false
	}
	if c.st[idx].cap <= 0 {
		c.rrUncapped.last = idx
		return max, false
	}
	if b := c.st[idx].budget; b > 0 {
		n := int(b / int64(quantum))
		if n > max {
			n = max
		}
		if n < 1 {
			return 0, false
		}
		c.rrBudget.last = idx
		return n, false
	}
	if c.cfg.WorkConserving {
		c.rrOverflow.last = idx
		return max, false
	}
	return max, true
}

// BatchPattern implements PatternBatcher. Between credit refills (which
// NextBoundary keeps outside the offered stretch) Pick's selection is a
// strict-priority round-robin whose tier membership only changes when a
// member's budget runs out, so the weighted pattern over a contended host
// is whole rotations of the active tier: every member gets one full
// quantum per rotation, in cyclic order from the tier's cursor. The
// rotation count is bounded so every member stays eligible at each of its
// own picks — budget life ceil(budget/quantum) picks for the budgeted
// tier, unbounded for the uncapped and work-conserving tiers — which also
// keeps the per-VM bulk Charge equivalent to the per-quantum charges
// (Credit's Charge is linear in busy time). When every runnable VM is a
// capped VM with an exhausted budget and the scheduler is not
// work-conserving, the whole stretch provably idles.
func (c *Credit) BatchPattern(quota []PatternQuota, quantum sim.Time, max int, _ sim.Time) ([]PatternPick, bool) {
	if quantum <= 0 || max <= 0 {
		return nil, false
	}
	// Mirror Pick's tier selection on the runnable set, which the caller
	// certifies is static across the stretch.
	anyRunnable := false
	anyUncapped := false
	bestPrio := 0
	haveBudgeted := false
	for i, v := range c.vms {
		if !v.Runnable() {
			continue
		}
		anyRunnable = true
		if c.st[i].cap <= 0 {
			anyUncapped = true
			continue
		}
		if c.st[i].budget > 0 && (!haveBudgeted || v.Priority() > bestPrio) {
			bestPrio = v.Priority()
			haveBudgeted = true
		}
	}
	var cursor *rrQueue
	var eligible func(i int) bool
	// life bounds a member's rotations so it survives every one of its
	// own picks; nil members have no budget to run out of.
	var life func(i int) int
	switch {
	case haveBudgeted:
		cursor = &c.rrBudget
		eligible = func(i int) bool {
			v := c.vms[i]
			return v.Runnable() && v.Priority() == bestPrio &&
				c.st[i].cap > 0 && c.st[i].budget > 0
		}
		life = func(i int) int {
			return int(ceilDiv(c.st[i].budget, int64(quantum)))
		}
	case anyUncapped:
		cursor = &c.rrUncapped
		eligible = func(i int) bool {
			return c.vms[i].Runnable() && c.st[i].cap <= 0
		}
	case anyRunnable && c.cfg.WorkConserving:
		cursor = &c.rrOverflow
		eligible = func(i int) bool { return c.vms[i].Runnable() }
	case anyRunnable:
		// Every runnable VM is capped with an exhausted budget: Pick
		// returns nil until the refill, which lies beyond the stretch.
		return nil, true
	default:
		return nil, false
	}
	return rotationPattern(c.vms, cursor, quota, max, eligible, life), false
}

// SetCap implements CapSetter. Raising or lowering a cap mid-period adjusts
// the remaining budget by the pro-rated difference so that the new
// allocation takes effect immediately (the in-scheduler PAS variant relies
// on this reactivity).
func (c *Credit) SetCap(id vm.ID, pct float64) error {
	idx, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	if pct < 0 {
		return fmt.Errorf("sched: negative cap %v for VM %d", pct, id)
	}
	st := &c.st[idx]
	st.cap = pct
	refill := c.refillMicros(pct)
	// Pro-rate the remaining budget by the integer refill difference so
	// the new allocation takes effect immediately and exactly.
	st.budget += refill - st.refill
	st.refill = refill
	return nil
}

// Cap implements CapSetter.
func (c *Credit) Cap(id vm.ID) (float64, error) {
	idx, ok := c.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	return c.st[idx].cap, nil
}

// Budget returns the VM's remaining budget in this accounting period, in
// exact microseconds of CPU time. It is exposed for tests and
// introspection.
func (c *Credit) Budget(id vm.ID) (sim.Time, error) {
	idx, ok := c.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	return sim.Time(c.st[idx].budget), nil
}

// Period returns the accounting period.
func (c *Credit) Period() sim.Time { return c.cfg.Period }

// SetTracer implements TraceSetter.
func (c *Credit) SetTracer(t Tracer) { c.tracer = t }

// Throttled implements Throttler: a capped VM with an exhausted budget
// is barred until the next refill unless the scheduler is
// work-conserving.
func (c *Credit) Throttled(v *vm.VM) bool {
	if c.cfg.WorkConserving {
		return false
	}
	idx := IndexOf(c.vms, v)
	if idx < 0 {
		return false
	}
	return c.st[idx].cap > 0 && c.st[idx].budget <= 0
}
