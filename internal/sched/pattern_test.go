package sched

import (
	"reflect"
	"testing"

	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// generousQuota grants every registered VM an effectively unbounded
// pattern share, as the host would for VMs with deep backlogs.
func generousQuota(s Scheduler) []PatternQuota {
	var out []PatternQuota
	for _, v := range s.VMs() {
		out = append(out, PatternQuota{VM: v, MaxPicks: 1 << 30})
	}
	return out
}

// refPickIDs drives the scheduler through the reference
// Pick/Charge/Tick cycle for n quanta starting at t0, charging one full
// quantum per pick, and returns the picked VM IDs in order (-1 for idle
// quanta).
func refPickIDs(s Scheduler, t0 sim.Time, n int) []vm.ID {
	ids := make([]vm.ID, 0, n)
	now := t0
	for i := 0; i < n; i++ {
		v := s.Pick(now)
		end := now + quantum
		if v != nil {
			v.Consume(1, end)
			s.Charge(v, quantum, end)
			ids = append(ids, v.ID())
		} else {
			ids = append(ids, -1)
		}
		s.Tick(end)
		now = end
	}
	return ids
}

// applyPattern applies a certified pattern the way the host does: one
// bulk Charge per VM at the pattern's end, no Tick (the caller certifies
// no accounting boundary lies inside). It returns the total quanta.
func applyPattern(s Scheduler, picks []PatternPick, t0 sim.Time) int {
	total := 0
	for _, p := range picks {
		total += p.Quanta
	}
	end := t0 + sim.Time(total)*quantum
	for _, p := range picks {
		p.VM.Consume(sim.Work(p.Quanta), end)
		s.Charge(p.VM, sim.Time(p.Quanta)*quantum, end)
	}
	return total
}

// tallies folds a pick-ID sequence into per-VM counts, ignoring idles.
func tallies(ids []vm.ID) map[vm.ID]int {
	out := make(map[vm.ID]int)
	for _, id := range ids {
		if id >= 0 {
			out[id]++
		}
	}
	return out
}

func patternTallies(picks []PatternPick) map[vm.ID]int {
	out := make(map[vm.ID]int)
	for _, p := range picks {
		out[p.VM.ID()] += p.Quanta
	}
	return out
}

// checkPatternEquivalence builds the scheduler twice, lets one certify a
// pattern of up to max quanta at t0 while the twin steps quantum by
// quantum, and requires (a) identical per-VM tallies over the pattern's
// span and (b) identical pick sequences for tail quanta afterwards — the
// committed cursors and bulk charges must leave the scheduler in exactly
// the state per-quantum picking would have.
func checkPatternEquivalence(t *testing.T, build func(t *testing.T) Scheduler,
	quota func(s Scheduler) []PatternQuota, max, tail int) []PatternPick {
	t.Helper()
	pat := build(t)
	ref := build(t)
	pb, ok := pat.(PatternBatcher)
	if !ok {
		t.Fatalf("%s does not implement PatternBatcher", pat.Name())
	}
	const t0 = sim.Time(0)
	picks, idle := pb.BatchPattern(quota(pat), quantum, max, t0)
	if idle {
		t.Fatalf("unexpected idle certification")
	}
	if picks == nil {
		t.Fatalf("pattern not certified")
	}
	total := applyPattern(pat, picks, t0)
	if total < 2 || total > max {
		t.Fatalf("pattern covers %d quanta of %d offered", total, max)
	}
	refIDs := refPickIDs(ref, t0, total+tail)
	if got, want := patternTallies(picks), tallies(refIDs[:total]); !reflect.DeepEqual(got, want) {
		t.Fatalf("pattern tallies %v, reference %v over %d quanta", got, want, total)
	}
	for _, id := range refIDs[:total] {
		if id < 0 {
			t.Fatalf("reference idled inside the certified pattern span")
		}
	}
	patTail := refPickIDs(pat, t0+sim.Time(total)*quantum, tail)
	if !reflect.DeepEqual(patTail, refIDs[total:]) {
		t.Fatalf("post-pattern picks diverge:\n pattern %v\n reference %v", patTail, refIDs[total:])
	}
	return picks
}

func TestCreditBatchPatternContended(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit(CreditConfig{})
		for _, cfg := range []struct {
			id     vm.ID
			credit float64
		}{{1, 20}, {2, 30}, {3, 40}} {
			if err := s.Add(busyVM(t, cfg.id, vm.Config{Credit: cfg.credit})); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	// 27 quanta offered (the refill at 30 stays outside); V20's budget
	// lasts 6 picks, so 6 whole rotations of 3 VMs are certifiable.
	picks := checkPatternEquivalence(t, build, generousQuota, 27, 60)
	if len(picks) != 3 {
		t.Fatalf("rotation over %d VMs, want 3: %v", len(picks), picks)
	}
	for _, p := range picks {
		if p.Quanta != 6 {
			t.Fatalf("want 6 rotations for every member, got %v", picks)
		}
	}
}

func TestCreditBatchPatternPriorityTier(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit(CreditConfig{})
		if err := s.Add(busyVM(t, 0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})); err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []struct {
			id     vm.ID
			credit float64
		}{{1, 20}, {2, 40}} {
			if err := s.Add(busyVM(t, cfg.id, vm.Config{Credit: cfg.credit})); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	// The strict-priority Dom0 monopolizes the processor while its budget
	// lasts (3 picks); the pattern must cover exactly that tier.
	picks := checkPatternEquivalence(t, build, generousQuota, 27, 60)
	if len(picks) != 1 || picks[0].VM.ID() != 0 || picks[0].Quanta != 3 {
		t.Fatalf("want Dom0 x3, got %v", picks)
	}
}

func TestCreditBatchPatternUncappedRotation(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit(CreditConfig{})
		for _, id := range []vm.ID{1, 2} {
			if err := s.Add(busyVM(t, id, vm.Config{Credit: 0})); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	// Null-credit VMs have no budget life: the whole offer batches as
	// whole rotations (floor(25/2) = 12 each).
	picks := checkPatternEquivalence(t, build, generousQuota, 25, 40)
	if len(picks) != 2 || picks[0].Quanta != 12 || picks[1].Quanta != 12 {
		t.Fatalf("want 12 rotations over 2 uncapped VMs, got %v", picks)
	}
}

func TestCreditBatchPatternQuotaBound(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit(CreditConfig{})
		for _, id := range []vm.ID{1, 2} {
			if err := s.Add(busyVM(t, id, vm.Config{Credit: 40})); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	quota := func(s Scheduler) []PatternQuota {
		var out []PatternQuota
		for _, v := range s.VMs() {
			m := 1 << 30
			if v.ID() == 2 {
				m = 4 // the host sees VM 2 nearly drained
			}
			out = append(out, PatternQuota{VM: v, MaxPicks: m})
		}
		return out
	}
	picks := checkPatternEquivalence(t, build, quota, 27, 0)
	for _, p := range picks {
		if p.Quanta != 4 {
			t.Fatalf("quota must bound every rotation, got %v", picks)
		}
	}
}

func TestCreditBatchPatternIdleAndDecline(t *testing.T) {
	s := NewCredit(CreditConfig{})
	v1 := busyVM(t, 1, vm.Config{Credit: 10})
	v2 := busyVM(t, 2, vm.Config{Credit: 20})
	for _, v := range []*vm.VM{v1, v2} {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	// Exhaust both budgets: runnable but unserviceable VMs idle the
	// processor until the refill.
	s.Charge(v1, 10*sim.Millisecond, 0)
	s.Charge(v2, 10*sim.Millisecond, 0)
	picks, idle := s.BatchPattern(generousQuota(s), quantum, 20, 0)
	if !idle || picks != nil {
		t.Fatalf("want idle certification, got picks=%v idle=%v", picks, idle)
	}
	if got := s.Pick(0); got != nil {
		t.Fatalf("reference would run %v during a certified-idle stretch", got)
	}
	// A one-quantum offer still gets a truthful idle answer (the host
	// only acts on offers of two or more quanta); a non-positive offer
	// declines outright.
	if picks, idle := s.BatchPattern(generousQuota(s), quantum, 1, 0); picks != nil || !idle {
		t.Fatalf("1-quantum offer: got picks=%v idle=%v", picks, idle)
	}
	if picks, idle := s.BatchPattern(generousQuota(s), quantum, 0, 0); picks != nil || idle {
		t.Fatalf("0-quantum offer: got picks=%v idle=%v", picks, idle)
	}
	// Zero quotas (every VM nearly drained) must decline, not idle.
	sd := NewCredit(CreditConfig{})
	if err := sd.Add(busyVM(t, 3, vm.Config{Credit: 30})); err != nil {
		t.Fatal(err)
	}
	zero := []PatternQuota{{VM: sd.VMs()[0], MaxPicks: 0}}
	if picks, idle := sd.BatchPattern(zero, quantum, 20, 0); picks != nil || idle {
		t.Fatalf("zero quota: got picks=%v idle=%v", picks, idle)
	}
}

func TestCreditBatchPatternWorkConserving(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit(CreditConfig{WorkConserving: true})
		v1 := busyVM(t, 1, vm.Config{Credit: 10})
		v2 := busyVM(t, 2, vm.Config{Credit: 20})
		for _, v := range []*vm.VM{v1, v2} {
			if err := s.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		// Both budgets exhausted: overflow round-robin shares the idle
		// capacity instead of idling.
		s.Charge(v1, 10*sim.Millisecond, 0)
		s.Charge(v2, 10*sim.Millisecond, 0)
		return s
	}
	picks := checkPatternEquivalence(t, build, generousQuota, 20, 0)
	if len(picks) != 2 || picks[0].Quanta != 10 || picks[1].Quanta != 10 {
		t.Fatalf("want 10 overflow rotations over 2 VMs, got %v", picks)
	}
}

func TestSEDFBatchPatternSlicePhase(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewSEDF(SEDFConfig{})
		for _, cfg := range []struct {
			id    vm.ID
			slice sim.Time
		}{{1, 5 * sim.Millisecond}, {2, 10 * sim.Millisecond}} {
			v := busyVM(t, cfg.id, vm.Config{Credit: 50})
			if err := s.AddWithParams(v, SEDFParams{
				Slice: cfg.slice, Period: 100 * sim.Millisecond, Extratime: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	// Equal deadlines: registration order breaks the tie, so the frozen
	// EDF pattern is v1 x5 then v2 x10 — and it must stop there rather
	// than extend into the extratime phase (mixing would corrupt the
	// bulk charges).
	picks := checkPatternEquivalence(t, build, generousQuota, 50, 0)
	want := []struct {
		id vm.ID
		q  int
	}{{1, 5}, {2, 10}}
	if len(picks) != len(want) {
		t.Fatalf("want sequential EDF picks %v, got %v", want, picks)
	}
	for i, w := range want {
		if picks[i].VM.ID() != w.id || picks[i].Quanta != w.q {
			t.Fatalf("pick %d: want VM %d x%d, got %v", i, w.id, w.q, picks)
		}
	}
}

func TestSEDFBatchPatternQuotaCutsPrefix(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewSEDF(SEDFConfig{})
		for _, id := range []vm.ID{1, 2} {
			v := busyVM(t, id, vm.Config{Credit: 50})
			if err := s.AddWithParams(v, SEDFParams{
				Slice: 10 * sim.Millisecond, Period: 100 * sim.Millisecond,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	quota := func(s Scheduler) []PatternQuota {
		var out []PatternQuota
		for _, v := range s.VMs() {
			m := 1 << 30
			if v.ID() == 1 {
				m = 3
			}
			out = append(out, PatternQuota{VM: v, MaxPicks: m})
		}
		return out
	}
	// VM 1 is EDF-first but quota-cut before its slice runs out: EDF
	// cannot move past it, so the certified prefix is VM 1's three picks
	// only.
	picks := checkPatternEquivalence(t, build, quota, 50, 0)
	if len(picks) != 1 || picks[0].VM.ID() != 1 || picks[0].Quanta != 3 {
		t.Fatalf("want VM1 x3 prefix, got %v", picks)
	}
}

func TestSEDFBatchPatternExtratimeRotation(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewSEDF(SEDFConfig{})
		for _, id := range []vm.ID{1, 2} {
			v := busyVM(t, id, vm.Config{Credit: 50})
			if err := s.AddWithParams(v, SEDFParams{
				Slice: 0, Period: 100 * sim.Millisecond, Extratime: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	// No slice time anywhere: the variable-credit extratime round-robin
	// batches as whole rotations.
	picks := checkPatternEquivalence(t, build, generousQuota, 21, 0)
	if len(picks) != 2 || picks[0].Quanta != 10 || picks[1].Quanta != 10 {
		t.Fatalf("want 10 extratime rotations over 2 VMs, got %v", picks)
	}
}

func TestCredit2BatchPatternContended(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit2()
		for _, cfg := range []struct {
			id     vm.ID
			credit float64
		}{{1, 20}, {2, 30}, {3, 40}} {
			if err := s.Add(busyVM(t, cfg.id, vm.Config{Credit: cfg.credit})); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	// The closed-form merge must reproduce the weighted 20/30/40
	// interleaving exactly, commit the vclock of the last pick, and leave
	// the tail picks identical to per-quantum stepping.
	picks := checkPatternEquivalence(t, build, generousQuota, 90, 120)
	got := patternTallies(picks)
	// Over 90 quanta the shares track the weights within one rotation.
	for id, weight := range map[vm.ID]float64{1: 20, 2: 30, 3: 40} {
		want := 90 * weight / 90.0
		if diff := float64(got[id]) - want; diff > 2 || diff < -2 {
			t.Fatalf("VM %d tally %d, want ~%.0f: %v", id, got[id], want, got)
		}
	}
}

func TestCredit2BatchPatternEqualWeightsAlternate(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit2()
		for _, id := range []vm.ID{1, 2} {
			if err := s.Add(busyVM(t, id, vm.Config{Weight: 3})); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	// Equal weights from identical vruntimes alternate strictly, starting
	// at the lower registration index (Pick's strict less-than tie-break).
	picks := checkPatternEquivalence(t, build, generousQuota, 9, 20)
	got := patternTallies(picks)
	if got[1] != 5 || got[2] != 4 {
		t.Fatalf("want 5/4 alternation over 9 quanta, got %v", got)
	}
}

func TestCredit2BatchPatternQuotaCut(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit2()
		for _, id := range []vm.ID{1, 2} {
			if err := s.Add(busyVM(t, id, vm.Config{Weight: 1})); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	quota := func(s Scheduler) []PatternQuota {
		var out []PatternQuota
		for _, v := range s.VMs() {
			m := 1 << 30
			if v.ID() == 2 {
				m = 3 // the host sees VM 2 nearly drained
			}
			out = append(out, PatternQuota{VM: v, MaxPicks: m})
		}
		return out
	}
	// VM 2's fourth pick is the crossover: the pattern must end strictly
	// before it. With equal weights the merge alternates 1,2,1,2,1,2,1 —
	// seven picks, then VM 2 would be picked again.
	picks := checkPatternEquivalence(t, build, quota, 50, 0)
	got := patternTallies(picks)
	if got[1] != 4 || got[2] != 3 {
		t.Fatalf("want the 4/3 prefix before VM 2's quota crossover, got %v", got)
	}
}

func TestCredit2BatchPatternWakeUpClamp(t *testing.T) {
	const warmup = 200
	build := func(t *testing.T) Scheduler {
		s := NewCredit2()
		v1 := busyVM(t, 1, vm.Config{Weight: 1})
		v2 := mustVM(t, 2, vm.Config{Weight: 1}) // idle through the warmup
		if err := s.Add(v1); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(v2); err != nil {
			t.Fatal(err)
		}
		// v1 runs alone and drags the vclock far ahead of v2's frozen
		// vruntime, then v2 wakes: the pattern's first-pick clamp must
		// bound v2's catch-up advantage to maxLag, exactly like Pick's.
		refPickIDs(s, 0, warmup)
		v2.SetWorkload(&workload.Hog{})
		return s
	}
	t0 := sim.Time(warmup) * quantum
	pat := build(t)
	ref := build(t)
	picks, idle := pat.(PatternBatcher).BatchPattern(generousQuota(pat), quantum, 80, t0)
	if idle || picks == nil {
		t.Fatalf("pattern not certified after wake-up: picks=%v idle=%v", picks, idle)
	}
	total := applyPattern(pat, picks, t0)
	refIDs := refPickIDs(ref, t0, total+40)
	if got, want := patternTallies(picks), tallies(refIDs[:total]); !reflect.DeepEqual(got, want) {
		t.Fatalf("wake-up pattern tallies %v, reference %v over %d quanta", got, want, total)
	}
	patTail := refPickIDs(pat, t0+sim.Time(total)*quantum, 40)
	if !reflect.DeepEqual(patTail, refIDs[total:]) {
		t.Fatalf("post-pattern picks diverge after wake-up clamp:\n pattern %v\n reference %v",
			patTail, refIDs[total:])
	}
	// The woken VM catches up maxLag worth of virtual time but no more:
	// its tally leads without monopolizing the span.
	got := patternTallies(picks)
	if got[2] <= got[1] || got[1] == 0 {
		t.Fatalf("want a bounded catch-up lead for the woken VM, got %v", got)
	}
}

func TestCredit2BatchPatternSingleRunnable(t *testing.T) {
	build := func(t *testing.T) Scheduler {
		s := NewCredit2()
		if err := s.Add(busyVM(t, 1, vm.Config{Credit: 20})); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(mustVM(t, 2, vm.Config{Credit: 70})); err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Credit2 has no Batcher, so the host routes sole-runnable stretches
	// through BatchPattern too: the merge degenerates to one progression.
	picks := checkPatternEquivalence(t, build, generousQuota, 25, 10)
	if len(picks) != 1 || picks[0].VM.ID() != 1 || picks[0].Quanta != 25 {
		t.Fatalf("want the sole runnable VM x25, got %v", picks)
	}
}

func TestCredit2BatchPatternDecline(t *testing.T) {
	s := NewCredit2()
	v := busyVM(t, 1, vm.Config{Credit: 30})
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	// Zero quota (nearly drained), sub-2 offers and empty runnable sets
	// all decline — Credit2 is work-conserving, so it never certifies an
	// idle stretch.
	zero := []PatternQuota{{VM: v, MaxPicks: 0}}
	if picks, idle := s.BatchPattern(zero, quantum, 20, 0); picks != nil || idle {
		t.Fatalf("zero quota: got picks=%v idle=%v", picks, idle)
	}
	if picks, idle := s.BatchPattern(generousQuota(s), quantum, 1, 0); picks != nil || idle {
		t.Fatalf("1-quantum offer: got picks=%v idle=%v", picks, idle)
	}
	if picks, idle := s.BatchPattern(generousQuota(s), quantum, 0, 0); picks != nil || idle {
		t.Fatalf("0-quantum offer: got picks=%v idle=%v", picks, idle)
	}
	v.Pause()
	if picks, idle := s.BatchPattern(nil, quantum, 20, 0); picks != nil || idle {
		t.Fatalf("no runnable VMs: got picks=%v idle=%v", picks, idle)
	}
}

func TestSEDFBatchPatternIdle(t *testing.T) {
	s := NewSEDF(SEDFConfig{})
	v := busyVM(t, 1, vm.Config{Credit: 50})
	if err := s.AddWithParams(v, SEDFParams{
		Slice: 0, Period: 100 * sim.Millisecond, Extratime: false,
	}); err != nil {
		t.Fatal(err)
	}
	picks, idle := s.BatchPattern(generousQuota(s), quantum, 20, 0)
	if !idle || picks != nil {
		t.Fatalf("want idle certification, got picks=%v idle=%v", picks, idle)
	}
	if got := s.Pick(0); got != nil {
		t.Fatalf("reference would run %v during a certified-idle stretch", got)
	}
}
