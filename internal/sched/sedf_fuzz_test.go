package sched

import (
	"testing"

	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// sedfSnapshot captures the scheduler-internal state. VMs are shared
// pointers: neither BatchPattern nor Pick/Charge touches workload state
// (the caller performs Consume), so restoring a snapshot replays the
// exact same scheduling decisions on the live VM set.
type sedfSnapshot struct {
	vms     []*vm.VM
	st      []sedfState
	rrExtra int
}

func snapshotSEDF(s *SEDF) sedfSnapshot {
	return sedfSnapshot{
		vms:     append([]*vm.VM(nil), s.vms...),
		st:      append([]sedfState(nil), s.st...),
		rrExtra: s.rrExtra.last,
	}
}

// restoreSEDF builds a fresh scheduler from a snapshot, sharing the VM
// pointers but owning its own state slices.
func restoreSEDF(snap sedfSnapshot, cfg SEDFConfig) *SEDF {
	s := NewSEDF(cfg)
	s.vms = append(s.vms, snap.vms...)
	s.st = append(s.st, snap.st...)
	for i, v := range s.vms {
		s.byID[v.ID()] = i
	}
	s.rrExtra.last = snap.rrExtra
	return s
}

func sameSEDFState(a sedfSnapshot, s *SEDF) bool {
	if len(a.vms) != len(s.vms) || a.rrExtra != s.rrExtra.last {
		return false
	}
	for i := range a.vms {
		if a.vms[i] != s.vms[i] || a.st[i] != s.st[i] {
			return false
		}
	}
	return true
}

// checkSEDFInvariants asserts the structural invariants random lifecycles
// must never break: registry/slice consistency, valid parameters, and
// integer slice accounting that never exceeds one period's grant.
func checkSEDFInvariants(t *testing.T, s *SEDF) {
	t.Helper()
	if len(s.vms) != len(s.st) || len(s.vms) != len(s.byID) {
		t.Fatalf("state skew: %d vms, %d st, %d byID", len(s.vms), len(s.st), len(s.byID))
	}
	for id, i := range s.byID {
		if i < 0 || i >= len(s.vms) || s.vms[i].ID() != id {
			t.Fatalf("byID[%d]=%d does not match slice %v", id, i, s.vms)
		}
	}
	for i, st := range s.st {
		if err := st.params.Validate(); err != nil {
			t.Fatalf("VM %d holds invalid params: %v", s.vms[i].ID(), err)
		}
		if st.deadline <= 0 {
			t.Fatalf("VM %d non-positive deadline %v", s.vms[i].ID(), st.deadline)
		}
		if st.remaining > int64(st.params.Period) {
			t.Fatalf("VM %d remaining %d exceeds period %v", s.vms[i].ID(), st.remaining, st.params.Period)
		}
		if st.extraUsed < 0 {
			t.Fatalf("VM %d negative extratime %v", s.vms[i].ID(), st.extraUsed)
		}
	}
}

// sedfOffer bounds a pattern offer the way the host does: strictly
// before the scheduler's next deadline boundary, so the certified
// stretch can never span a slice replenishment.
func sedfOffer(s *SEDF, now sim.Time, want int) int {
	max := want
	if b := s.NextBoundary(now); b != sim.Never {
		if b <= now {
			return 0
		}
		if k := int((b-now+quantum-1)/quantum) - 1; k < max {
			max = k
		}
	}
	return max
}

// FuzzSEDFLifecycle mirrors FuzzCredit2Lifecycle for the
// integer-microsecond SEDF: random Add/Remove/pause/run/charge/batch
// sequences, checking after every operation that the scheduler never
// panics, keeps its registry and slices consistent, and — whenever a
// pattern certifies — that the batched tallies, the bulk charges and the
// committed extratime cursor land on bit-identical state as
// quantum-by-quantum reference picking (and that a declined pattern
// commits nothing).
func FuzzSEDFLifecycle(f *testing.F) {
	f.Add([]byte{0x00, 0x18, 0x02, 0x23, 0x04, 0x30, 0x0b, 0x3f})
	f.Add([]byte{0x00, 0x08, 0x00, 0x10, 0x01, 0x05, 0x1c, 0x02, 0x24, 0x18, 0x04})
	f.Add([]byte{0x00, 0xff, 0x00, 0x00, 0x03, 0x20, 0x04, 0x04, 0x01, 0x00, 0x04})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		cfg := SEDFConfig{DefaultPeriod: 50 * sim.Millisecond, DefaultExtratime: true}
		s := NewSEDF(cfg)
		now := sim.Time(0)
		nextID := vm.ID(1)
		for k := 0; k+1 < len(ops); k += 2 {
			op, arg := ops[k], int(ops[k+1])
			switch op % 6 {
			case 0: // add a VM with a drawn (slice, period, extratime) triplet
				if len(s.vms) >= 8 {
					break
				}
				v, err := vm.New(nextID, vm.Config{Credit: float64(arg % 101)})
				if err != nil {
					t.Fatal(err)
				}
				nextID++
				if arg%4 != 0 {
					v.SetWorkload(&workload.Hog{})
				}
				if arg%3 == 0 {
					// Explicit params: slice arg% of a 40 ms period,
					// extratime from the low bit.
					p := SEDFParams{
						Slice:     sim.Time(arg%41) * sim.Millisecond,
						Period:    40 * sim.Millisecond,
						Extratime: arg%2 == 0,
					}
					if err := s.AddWithParams(v, p); err != nil {
						t.Fatal(err)
					}
				} else if err := s.Add(v); err != nil {
					t.Fatal(err)
				}
			case 1: // remove a VM
				if len(s.vms) == 0 {
					break
				}
				if err := s.Remove(s.vms[arg%len(s.vms)].ID()); err != nil {
					t.Fatal(err)
				}
			case 2: // flip pause state / wake an idle VM / resize a slice
				if len(s.vms) == 0 {
					break
				}
				v := s.vms[arg%len(s.vms)]
				switch {
				case v.Paused():
					v.Resume()
				case arg%3 == 0:
					v.Pause()
				case arg%3 == 1:
					v.SetWorkload(&workload.Hog{})
				default:
					if err := s.SetCap(v.ID(), float64(arg%120)); err != nil {
						t.Fatal(err)
					}
				}
			case 3: // run reference quanta (deadline rollovers included)
				for j := 0; j < arg%64; j++ {
					v := s.Pick(now)
					now += quantum
					if v != nil {
						s.Charge(v, quantum, now)
					}
					s.Tick(now)
				}
			case 4: // differential: batched pattern vs reference picking
				snap := snapshotSEDF(s)
				quota := make([]PatternQuota, 0, len(s.vms))
				for j, v := range s.vms {
					if !v.Runnable() {
						continue
					}
					quota = append(quota, PatternQuota{VM: v, MaxPicks: (arg + j*37) % 200})
				}
				max := sedfOffer(s, now, 2+arg%128)
				if max < 2 {
					break
				}
				picks, idle := s.BatchPattern(quota, quantum, max, now)
				if idle {
					// Certified idle: the reference must also idle for the
					// whole stretch, and nothing may have been committed.
					ref := restoreSEDF(snap, cfg)
					refNow := now
					for j := 0; j < max; j++ {
						if v := ref.Pick(refNow); v != nil {
							t.Fatalf("reference picked VM %d inside a certified idle stretch", v.ID())
						}
						refNow += quantum
						ref.Tick(refNow)
					}
					if !sameSEDFState(snap, s) {
						t.Fatal("idle certification committed state")
					}
					now += sim.Time(max) * quantum
					s.Tick(now)
					break
				}
				if picks == nil {
					if !sameSEDFState(snap, s) {
						t.Fatal("declined pattern committed state")
					}
					break
				}
				total := 0
				for _, p := range picks {
					if p.VM == nil || p.Quanta <= 0 {
						t.Fatalf("invalid pattern pick %+v", p)
					}
					total += p.Quanta
				}
				if total < 2 || total > max {
					t.Fatalf("pattern covers %d quanta of %d offered", total, max)
				}
				end := now + sim.Time(total)*quantum
				for _, p := range picks {
					s.Charge(p.VM, sim.Time(p.Quanta)*quantum, end)
				}
				ref := restoreSEDF(snap, cfg)
				got := make(map[vm.ID]int)
				refNow := now
				for j := 0; j < total; j++ {
					v := ref.Pick(refNow)
					if v == nil {
						t.Fatalf("reference idled inside a certified %d-quanta pattern", total)
					}
					got[v.ID()]++
					refNow += quantum
					ref.Charge(v, quantum, refNow)
					ref.Tick(refNow)
				}
				for _, p := range picks {
					if got[p.VM.ID()] != p.Quanta {
						t.Fatalf("tally mismatch for VM %d: pattern %d reference %d",
							p.VM.ID(), p.Quanta, got[p.VM.ID()])
					}
					delete(got, p.VM.ID())
				}
				if len(got) != 0 {
					t.Fatalf("reference picked VMs outside the pattern: %v", got)
				}
				if !sameSEDFState(snapshotSEDF(ref), s) {
					t.Fatalf("batched state diverges from reference:\n batched %+v rr=%d\n reference %+v rr=%d",
						s.st, s.rrExtra.last, ref.st, ref.rrExtra.last)
				}
				now = end
				s.Tick(now)
			case 5: // partial charge (a draining tail quantum)
				if len(s.vms) == 0 {
					break
				}
				s.Charge(s.vms[arg%len(s.vms)], sim.Time(arg)*sim.Microsecond, now)
			}
			checkSEDFInvariants(t, s)
		}
	})
}
