package sched

import (
	"math"
	"testing"

	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

const quantum = sim.Millisecond

// mustVM builds a VM or fails the test.
func mustVM(t *testing.T, id vm.ID, cfg vm.Config) *vm.VM {
	t.Helper()
	v, err := vm.New(id, cfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	return v
}

// busyVM returns a VM with an infinite CPU hog attached.
func busyVM(t *testing.T, id vm.ID, cfg vm.Config) *vm.VM {
	t.Helper()
	v := mustVM(t, id, cfg)
	v.SetWorkload(&workload.Hog{})
	return v
}

// runQuanta drives the scheduler for total simulated time and returns the
// busy time granted to each VM.
func runQuanta(s Scheduler, total sim.Time) map[vm.ID]sim.Time {
	busy := make(map[vm.ID]sim.Time)
	for now := sim.Time(0); now < total; now += quantum {
		v := s.Pick(now)
		end := now + quantum
		if v != nil {
			v.Consume(1, end) // keep hogs accounted; value irrelevant
			s.Charge(v, quantum, end)
			busy[v.ID()] += quantum
		}
		s.Tick(end)
	}
	return busy
}

// share returns the VM's fraction of total.
func share(busy map[vm.ID]sim.Time, id vm.ID, total sim.Time) float64 {
	return float64(busy[id]) / float64(total)
}

func TestCreditProportionalUnderContention(t *testing.T) {
	s := NewCredit(CreditConfig{})
	dom0 := busyVM(t, 0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	v70 := busyVM(t, 2, vm.Config{Name: "V70", Credit: 70})
	for _, v := range []*vm.VM{dom0, v20, v70} {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	for _, tt := range []struct {
		id   vm.ID
		want float64
	}{{0, 0.10}, {1, 0.20}, {2, 0.70}} {
		if got := share(busy, tt.id, total); math.Abs(got-tt.want) > 0.01 {
			t.Errorf("VM %d share = %.3f, want %.2f", tt.id, got, tt.want)
		}
	}
}

func TestCreditCapIsHardLimit(t *testing.T) {
	// The fix-credit property (Scenario 1 of the paper): with V70 idle,
	// V20 still receives at most its 20% cap and the CPU idles.
	s := NewCredit(CreditConfig{})
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	v70 := mustVM(t, 2, vm.Config{Name: "V70", Credit: 70}) // idle
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v70); err != nil {
		t.Fatal(err)
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); math.Abs(got-0.20) > 0.005 {
		t.Errorf("V20 share = %.3f, want 0.20 (hard cap)", got)
	}
	if busy[2] != 0 {
		t.Errorf("idle V70 ran %v", busy[2])
	}
}

func TestCreditNullCreditConsumesSlack(t *testing.T) {
	// A zero-credit VM has no guarantee but absorbs idle slices (the
	// paper's description of the Credit scheduler's null-credit case).
	s := NewCredit(CreditConfig{})
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	free := busyVM(t, 2, vm.Config{Name: "Free", Credit: 0})
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(free); err != nil {
		t.Fatal(err)
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); math.Abs(got-0.20) > 0.005 {
		t.Errorf("V20 share = %.3f, want 0.20", got)
	}
	if got := share(busy, 2, total); math.Abs(got-0.80) > 0.005 {
		t.Errorf("null-credit share = %.3f, want 0.80", got)
	}
}

func TestCreditPriorityTierFirst(t *testing.T) {
	// Dom0 (higher priority) must be served before same-budget guests
	// within every period: it never misses its allocation even under full
	// contention.
	s := NewCredit(CreditConfig{})
	dom0 := busyVM(t, 0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})
	v90 := busyVM(t, 1, vm.Config{Name: "V90", Credit: 90})
	if err := s.Add(dom0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v90); err != nil {
		t.Fatal(err)
	}
	const total = sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 0, total); math.Abs(got-0.10) > 0.005 {
		t.Errorf("Dom0 share = %.3f, want 0.10", got)
	}
}

func TestCreditWorkConservingOverflow(t *testing.T) {
	s := NewCredit(CreditConfig{WorkConserving: true})
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); got < 0.99 {
		t.Errorf("work-conserving single VM share = %.3f, want ~1", got)
	}
}

func TestCreditSetCapTakesEffect(t *testing.T) {
	s := NewCredit(CreditConfig{})
	v := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCap(1, 40); err != nil {
		t.Fatal(err)
	}
	if cap, err := s.Cap(1); err != nil || cap != 40 {
		t.Fatalf("Cap = %v, %v; want 40, nil", cap, err)
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); math.Abs(got-0.40) > 0.01 {
		t.Errorf("share after SetCap(40) = %.3f, want 0.40", got)
	}
}

func TestCreditCapAboveHundred(t *testing.T) {
	// PAS may set caps above 100% at low frequency; the VM is then
	// effectively unbounded by the cap (but still bounded by wall time).
	s := NewCredit(CreditConfig{})
	v := busyVM(t, 1, vm.Config{Name: "V", Credit: 20})
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCap(1, 120); err != nil {
		t.Fatal(err)
	}
	const total = sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); got < 0.99 {
		t.Errorf("share with cap 120 = %.3f, want ~1", got)
	}
}

func TestCreditErrors(t *testing.T) {
	s := NewCredit(CreditConfig{})
	if err := s.Add(nil); err == nil {
		t.Error("Add(nil) succeeded")
	}
	v := busyVM(t, 1, vm.Config{Credit: 20})
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v); err == nil {
		t.Error("duplicate Add succeeded")
	}
	if err := s.SetCap(9, 10); err == nil {
		t.Error("SetCap(unknown) succeeded")
	}
	if err := s.SetCap(1, -1); err == nil {
		t.Error("SetCap(-1) succeeded")
	}
	if _, err := s.Cap(9); err == nil {
		t.Error("Cap(unknown) succeeded")
	}
	if _, err := s.Budget(9); err == nil {
		t.Error("Budget(unknown) succeeded")
	}
}

func TestSEDFGuaranteesUnderContention(t *testing.T) {
	s := NewSEDF(SEDFConfig{DefaultExtratime: true})
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	v70 := busyVM(t, 2, vm.Config{Name: "V70", Credit: 70})
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v70); err != nil {
		t.Fatal(err)
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); got < 0.20-0.01 {
		t.Errorf("V20 share = %.3f, below its 0.20 guarantee", got)
	}
	if got := share(busy, 2, total); got < 0.70-0.01 {
		t.Errorf("V70 share = %.3f, below its 0.70 guarantee", got)
	}
	// Nothing idles: extratime hands out the remaining 10%.
	sum := share(busy, 1, total) + share(busy, 2, total)
	if sum < 0.999 {
		t.Errorf("total share = %.3f, want ~1 (work conserving)", sum)
	}
}

func TestSEDFDonatesUnusedSlices(t *testing.T) {
	// Scenario 2 of the paper: V70 idle, V20 with extratime receives its
	// slices — the variable-credit behaviour of Figure 6.
	s := NewSEDF(SEDFConfig{DefaultExtratime: true})
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	v70 := mustVM(t, 2, vm.Config{Name: "V70", Credit: 70})
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v70); err != nil {
		t.Fatal(err)
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); got < 0.99 {
		t.Errorf("V20 share with idle V70 = %.3f, want ~1", got)
	}
}

func TestSEDFWithoutExtratimeIsFixCredit(t *testing.T) {
	s := NewSEDF(SEDFConfig{DefaultExtratime: false})
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); math.Abs(got-0.20) > 0.01 {
		t.Errorf("V20 share without extratime = %.3f, want 0.20", got)
	}
}

func TestSEDFEDFOrdering(t *testing.T) {
	// A VM with a shorter period (earlier deadline) is served first.
	s := NewSEDF(SEDFConfig{})
	fast := busyVM(t, 1, vm.Config{Name: "fast"})
	slow := busyVM(t, 2, vm.Config{Name: "slow"})
	if err := s.AddWithParams(fast, SEDFParams{Slice: 5 * sim.Millisecond, Period: 20 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWithParams(slow, SEDFParams{Slice: 50 * sim.Millisecond, Period: 100 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if got := s.Pick(0); got != fast {
		t.Errorf("Pick = %v, want the earlier-deadline VM", got)
	}
	// Shares over time match the slice/period reservations.
	const total = 2 * sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); math.Abs(got-0.25) > 0.02 {
		t.Errorf("fast share = %.3f, want 0.25", got)
	}
	if got := share(busy, 2, total); math.Abs(got-0.50) > 0.02 {
		t.Errorf("slow share = %.3f, want 0.50", got)
	}
}

func TestSEDFParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    SEDFParams
	}{
		{"zero period", SEDFParams{Slice: sim.Millisecond}},
		{"negative slice", SEDFParams{Slice: -1, Period: sim.Second}},
		{"slice beyond period", SEDFParams{Slice: 2 * sim.Second, Period: sim.Second}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Error("Validate accepted invalid params")
			}
		})
	}
}

func TestSEDFSetCap(t *testing.T) {
	s := NewSEDF(SEDFConfig{})
	v := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCap(1, 40); err != nil {
		t.Fatal(err)
	}
	got, err := s.Cap(1)
	if err != nil || math.Abs(got-40) > 0.01 {
		t.Errorf("Cap = %v, %v; want 40", got, err)
	}
	// Caps are clamped at 100 (a slice cannot exceed its period).
	if err := s.SetCap(1, 150); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Cap(1); got > 100 {
		t.Errorf("Cap = %v, want <= 100", got)
	}
	if err := s.SetCap(9, 10); err == nil {
		t.Error("SetCap(unknown) succeeded")
	}
}

func TestSEDFExtratimeAccounting(t *testing.T) {
	s := NewSEDF(SEDFConfig{DefaultExtratime: true})
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	runQuanta(s, sim.Second)
	extra, err := s.ExtratimeUsed(1)
	if err != nil {
		t.Fatal(err)
	}
	// Of 1 s total, ~200 ms is guaranteed slice, the rest is extratime.
	if extra < 700*sim.Millisecond {
		t.Errorf("ExtratimeUsed = %v, want ~800ms", extra)
	}
	if _, err := s.ExtratimeUsed(9); err == nil {
		t.Error("ExtratimeUsed(unknown) succeeded")
	}
}

func TestCredit2WeightProportional(t *testing.T) {
	s := NewCredit2()
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	v70 := busyVM(t, 2, vm.Config{Name: "V70", Credit: 70})
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v70); err != nil {
		t.Fatal(err)
	}
	const total = 3 * sim.Second
	busy := runQuanta(s, total)
	ratio := float64(busy[2]) / float64(busy[1])
	if math.Abs(ratio-3.5) > 0.1 { // 70/20
		t.Errorf("share ratio = %.3f, want 3.5", ratio)
	}
}

func TestCredit2WorkConserving(t *testing.T) {
	s := NewCredit2()
	v20 := busyVM(t, 1, vm.Config{Name: "V20", Credit: 20})
	v70 := mustVM(t, 2, vm.Config{Name: "V70", Credit: 70}) // idle
	if err := s.Add(v20); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v70); err != nil {
		t.Fatal(err)
	}
	const total = sim.Second
	busy := runQuanta(s, total)
	if got := share(busy, 1, total); got < 0.99 {
		t.Errorf("single busy VM share = %.3f, want ~1", got)
	}
}

func TestCredit2WakeUpClamp(t *testing.T) {
	// A VM idle for a long time must not monopolize the CPU on wake-up.
	s := NewCredit2()
	v1 := busyVM(t, 1, vm.Config{Name: "A", Weight: 1})
	v2 := mustVM(t, 2, vm.Config{Name: "B", Weight: 1})
	if err := s.Add(v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v2); err != nil {
		t.Fatal(err)
	}
	runQuanta(s, 2*sim.Second) // v1 runs alone, vclock advances
	v2.SetWorkload(&workload.Hog{})

	// After wake-up, measure shares over the next second only.
	busy := make(map[vm.ID]sim.Time)
	for now := 2 * sim.Second; now < 3*sim.Second; now += quantum {
		v := s.Pick(now)
		if v != nil {
			s.Charge(v, quantum, now+quantum)
			busy[v.ID()] += quantum
		}
		s.Tick(now + quantum)
	}
	frac := float64(busy[2]) / float64(sim.Second)
	if frac > 0.6 {
		t.Errorf("woken VM consumed %.3f of the next second, want ~0.5", frac)
	}
}

func TestCredit2Errors(t *testing.T) {
	s := NewCredit2()
	if err := s.Add(nil); err == nil {
		t.Error("Add(nil) succeeded")
	}
	v := busyVM(t, 1, vm.Config{Credit: 20})
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v); err == nil {
		t.Error("duplicate Add succeeded")
	}
	if _, err := s.Weight(9); err == nil {
		t.Error("Weight(unknown) succeeded")
	}
	if w, err := s.Weight(1); err != nil || w != 20 {
		t.Errorf("Weight = %v, %v; want 20, nil", w, err)
	}
	// Weights beyond the exact-arithmetic bound are rejected, not
	// silently clamped (clamping would distort configured share ratios).
	if err := s.Add(busyVM(t, 2, vm.Config{Weight: 5000})); err == nil {
		t.Error("Add with weight 5000 succeeded; want rejection beyond 4096")
	}
	if err := s.Add(busyVM(t, 3, vm.Config{Weight: 4096})); err != nil {
		t.Errorf("Add with weight 4096 failed: %v", err)
	}
}

func TestVMsReturnsCopy(t *testing.T) {
	s := NewCredit(CreditConfig{})
	v := busyVM(t, 1, vm.Config{Credit: 20})
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	got := s.VMs()
	got[0] = nil
	if s.VMs()[0] == nil {
		t.Error("VMs exposes internal slice")
	}
}

func TestRRQueueFairness(t *testing.T) {
	var q rrQueue
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		j := q.next(3, func(int) bool { return true })
		counts[j]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("rr slot %d served %d times, want 100", i, c)
		}
	}
}
