// Package engine is the shared simulation engine behind every simulated
// machine in the repository: the single host (internal/host), the
// multi-core cluster (internal/multicore) and the consolidation data
// center (internal/consolidation).
//
// The engine owns the three things every machine used to hand-roll
// separately — the simulated clock, the ordered event queue, and the
// periodic actions (load meter, recorder sampler, user-level agents) —
// and drives the machine through a fixed scheduling quantum exactly as
// the original quantum-by-quantum loop did:
//
//	for clock < target:
//	    fire due events            (queue, at the quantum start)
//	    machine executes quanta    (Step or BatchStep)
//	    fire due periodic actions  (in registration order, at quantum end)
//
// Its contribution is the *event horizon*: before stepping, the engine
// computes the earliest upcoming moment anything discrete can happen — a
// scheduled event, a periodic-action boundary, the run target — and
// offers the machine the whole uninterrupted stretch as one batched step.
// The machine accepts only when it can prove the stretch is uniform
// (idle processor, or a single runnable VM consuming full quanta with no
// scheduler, governor or workload boundary inside), so a batched run is
// observationally identical to stepping the quanta one by one; otherwise
// the engine falls back to a single reference-semantics quantum. Idle
// hosts and single-runnable-VM stretches thus cost O(1) per horizon
// instead of O(quanta).
package engine

import (
	"fmt"
	"sort"

	"pasched/internal/sim"
)

// Machine is the simulated machine an Engine drives. Implementations hold
// the domain state (processor, scheduler, VMs); the engine holds time.
type Machine interface {
	// Step executes exactly one scheduling quantum beginning at now,
	// with reference (quantum-by-quantum) semantics. The engine advances
	// the clock afterwards; Step must not.
	Step(now sim.Time) error
	// BatchStep executes up to max consecutive quanta beginning at now
	// as one batched step, returning how many quanta it executed. It
	// returns 0 (not an error) when the stretch ahead cannot be proven
	// uniform, in which case the engine falls back to Step. The engine
	// guarantees max >= 2 and that no engine-owned boundary (event or
	// periodic action) lies strictly inside the offered stretch.
	BatchStep(now sim.Time, max int) (int, error)
}

// Action order groups: actions fire in ascending order at a shared
// boundary, matching the fixed sequence of the original host loop.
const (
	// OrderMeter is the load-meter group (fires first).
	OrderMeter = 100
	// OrderAgents is the user-level agent group.
	OrderAgents = 200
	// OrderSampler is the recorder-sampler group (fires last).
	OrderSampler = 300
)

// action is one periodic action: fn fires for every interval boundary
// that a step has covered, receiving the boundary time (not the clock).
type action struct {
	name     string
	interval sim.Time
	next     sim.Time
	order    int
	seq      int
	fn       func(now sim.Time) error
}

// boundarySource identifies what limited one event horizon.
type boundarySource int

const (
	srcTarget boundarySource = iota // the RunUntil target
	srcEvent                        // a scheduled event
	srcAction                       // a periodic-action boundary
)

// sourceCounts is the per-boundary-source breakdown of RunUntil
// iterations: every iteration increments exactly one counter, naming what
// limited that iteration's horizon.
type sourceCounts struct {
	target           int64 // the run target bounded the horizon
	event            int64 // a scheduled event bounded the horizon
	action           int64 // a periodic-action boundary bounded the horizon
	machineShortened int64 // the machine batched fewer quanta than offered
	machineDeclined  int64 // the machine declined the batch (reference step)
}

// Engine owns simulated time for one machine: clock, event queue and
// periodic actions.
type Engine struct {
	clock   sim.Clock
	queue   sim.Queue
	quantum sim.Time
	machine Machine
	actions []*action
	batched int64 // quanta executed through BatchStep
	stepped int64 // quanta executed through Step
	sources sourceCounts
}

// New returns an engine driving machine m at the given quantum.
func New(quantum sim.Time, m Machine) (*Engine, error) {
	if quantum <= 0 {
		return nil, fmt.Errorf("engine: quantum must be positive, got %v", quantum)
	}
	if m == nil {
		return nil, fmt.Errorf("engine: nil machine")
	}
	return &Engine{quantum: quantum, machine: m}, nil
}

// Now returns the current simulated time.
func (e *Engine) Now() sim.Time { return e.clock.Now() }

// Quantum returns the scheduling quantum.
func (e *Engine) Quantum() sim.Time { return e.quantum }

// Schedule enqueues fn to run at simulated time at. Events fire at the
// start of the first quantum whose start time is >= at, before the
// machine steps, in (time, scheduling) order.
func (e *Engine) Schedule(at sim.Time, fn sim.EventFunc) {
	e.queue.Schedule(at, fn)
}

// AddAction registers a periodic action. The action first fires one
// interval from now; actions sharing a boundary fire in ascending
// (order, registration) order. The boundary time — not the clock — is
// passed to fn, mirroring the original loop's "fire every elapsed
// boundary" semantics.
func (e *Engine) AddAction(name string, interval sim.Time, order int, fn func(now sim.Time) error) error {
	if interval <= 0 {
		return fmt.Errorf("engine: action %q interval must be positive, got %v", name, interval)
	}
	if fn == nil {
		return fmt.Errorf("engine: action %q has nil function", name)
	}
	e.actions = append(e.actions, &action{
		name:     name,
		interval: interval,
		next:     e.clock.Now() + interval,
		order:    order,
		seq:      len(e.actions),
		fn:       fn,
	})
	sort.SliceStable(e.actions, func(i, j int) bool {
		if e.actions[i].order != e.actions[j].order {
			return e.actions[i].order < e.actions[j].order
		}
		return e.actions[i].seq < e.actions[j].seq
	})
	return nil
}

// BatchedQuanta returns how many quanta were executed through batched
// steps, for tests and introspection.
func (e *Engine) BatchedQuanta() int64 { return e.batched }

// SteppedQuanta returns how many quanta were executed one by one.
func (e *Engine) SteppedQuanta() int64 { return e.stepped }

// BoundarySources returns the per-boundary-source breakdown of who
// limited each event horizon, as a fresh map keyed by
//
//	"target"            the RunUntil target bounded the horizon
//	"event"             a scheduled event bounded the horizon
//	"action"            a periodic-action boundary bounded the horizon
//	"machine-shortened" the machine batched fewer quanta than offered
//	"machine-declined"  the machine declined the batch entirely and one
//	                    reference quantum ran instead
//
// Every RunUntil iteration counts exactly once, so the map is a census of
// what to attack next when batching coverage stalls: a dominant
// "machine-declined" count means the machine (typically its scheduler)
// cannot certify the stretches the engine offers, while dominant
// engine-side sources mean batching is already limited only by genuine
// discrete activity. With every in-tree scheduler now certifying its
// pattern, "machine-declined" should stay near zero in the stock
// scenarios; a regression here is the first symptom of a scheduler losing
// its certification.
func (e *Engine) BoundarySources() map[string]int64 {
	return map[string]int64{
		"target":            e.sources.target,
		"event":             e.sources.event,
		"action":            e.sources.action,
		"machine-shortened": e.sources.machineShortened,
		"machine-declined":  e.sources.machineDeclined,
	}
}

// countSource attributes one RunUntil iteration to an engine-side source.
func (e *Engine) countSource(src boundarySource) {
	switch src {
	case srcEvent:
		e.sources.event++
	case srcAction:
		e.sources.action++
	default:
		e.sources.target++
	}
}

// QuantaCovering returns how many whole quanta of the given length cover
// the duration d: ceil(d/quantum), at least 1. A boundary at distance d
// is handled (event fired, action run, workload change observed) at the
// end of that many quanta, so a batch may extend exactly that far and no
// further. Machines share this helper when bounding their own batched
// steps.
func QuantaCovering(d, quantum sim.Time) int {
	n := (d + quantum - 1) / quantum
	if n < 1 {
		n = 1
	}
	return int(n)
}

// quantaCovering is QuantaCovering at the engine's own quantum.
func (e *Engine) quantaCovering(d sim.Time) int {
	return QuantaCovering(d, e.quantum)
}

// horizonQuanta returns the number of quanta from now to the event
// horizon — the earliest of the run target, the next scheduled event and
// the next periodic-action boundary, each rounded up to a whole quantum —
// along with which source set it (earlier sources win ties).
func (e *Engine) horizonQuanta(now, target sim.Time) (int, boundarySource) {
	max := e.quantaCovering(target - now)
	src := srcTarget
	if at, ok := e.queue.Next(); ok {
		if n := e.quantaCovering(at - now); n < max {
			max, src = n, srcEvent
		}
	}
	for _, a := range e.actions {
		if n := e.quantaCovering(a.next - now); n < max {
			max, src = n, srcAction
		}
	}
	return max, src
}

// Run advances the simulation by d.
func (e *Engine) Run(d sim.Time) error {
	return e.RunUntil(e.clock.Now() + d)
}

// RunUntil advances the simulation until simulated time t, executing
// whole quanta (the clock may finish past t by less than one quantum,
// exactly as the original loops did).
func (e *Engine) RunUntil(t sim.Time) error {
	for e.clock.Now() < t {
		now := e.clock.Now()
		if _, err := e.queue.RunDue(now); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
		n := 0
		max, src := e.horizonQuanta(now, t)
		if max > 1 {
			var err error
			n, err = e.machine.BatchStep(now, max)
			if err != nil {
				return err
			}
			if n < 0 || n > max {
				return fmt.Errorf("engine: machine batched %d quanta of %d offered", n, max)
			}
			e.batched += int64(n)
			switch {
			case n == max:
				e.countSource(src)
			case n > 0:
				e.sources.machineShortened++
			default:
				e.sources.machineDeclined++
			}
		} else {
			e.countSource(src)
		}
		if n == 0 {
			if err := e.machine.Step(now); err != nil {
				return err
			}
			n = 1
			e.stepped++
		}
		if err := e.clock.Advance(sim.Time(n) * e.quantum); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
		end := e.clock.Now()
		for _, a := range e.actions {
			for end >= a.next {
				if err := a.fn(a.next); err != nil {
					return err
				}
				a.next += a.interval
			}
		}
	}
	return nil
}
