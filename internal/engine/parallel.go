package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default parallelism for multi-machine
// drivers: GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Gate is a counting semaphore bounding how many persistent workers
// execute simultaneously. Unlike RunParallel, which spawns goroutines
// per task batch, a Gate serves long-lived workers (one per fleet
// shard) that acquire a slot to execute a command batch and release it
// while blocked on cross-worker hand-offs — so a bounded worker count
// can never deadlock a pipeline of blocking exchanges as long as every
// blocked worker releases its slot first.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate with n slots; n < 1 is clamped to 1.
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free and takes it.
func (g *Gate) Acquire() { g.slots <- struct{}{} }

// Release returns a slot taken by Acquire.
func (g *Gate) Release() { <-g.slots }

// Slots returns the gate's capacity.
func (g *Gate) Slots() int { return cap(g.slots) }

// RunParallel executes the tasks concurrently on up to workers
// goroutines and returns the first error in task order (so the reported
// error does not depend on goroutine interleaving). workers <= 1, or a
// single task, runs sequentially with no goroutines.
//
// It is the synchronization-barrier primitive of the multi-host drivers:
// independent machines (each owning its engine, scheduler, meters) step
// concurrently between barriers, and cross-machine work — migration
// completion, consolidation planning, coordinator DVFS decisions — runs
// sequentially at the barrier. Tasks must not share mutable state.
func RunParallel(workers int, tasks []func() error) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, task := range tasks {
			if err := task(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				errs[i] = tasks[i]()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
