package engine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"pasched/internal/sim"
)

// scriptMachine records every Step/BatchStep call and optionally accepts
// batches of the full offered size (or one quantum short of it).
type scriptMachine struct {
	batch   bool
	shorten bool // accept max-1 instead of max when possible
	log     []string
	// offers records (now, max) for every BatchStep call.
	offers [][2]int64
}

func (m *scriptMachine) Step(now sim.Time) error {
	m.log = append(m.log, fmt.Sprintf("step@%d", now))
	return nil
}

func (m *scriptMachine) BatchStep(now sim.Time, max int) (int, error) {
	m.offers = append(m.offers, [2]int64{int64(now), int64(max)})
	if !m.batch {
		return 0, nil
	}
	n := max
	if m.shorten && max > 2 {
		n = max - 1
	}
	m.log = append(m.log, fmt.Sprintf("batch@%d+%d", now, n))
	return n, nil
}

func newTestEngine(t *testing.T, q sim.Time, m Machine) *Engine {
	t.Helper()
	e, err := New(q, m)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, &scriptMachine{}); err == nil {
		t.Fatal("want error for zero quantum")
	}
	if _, err := New(sim.Millisecond, nil); err == nil {
		t.Fatal("want error for nil machine")
	}
	e := newTestEngine(t, sim.Millisecond, &scriptMachine{})
	if err := e.AddAction("bad", 0, OrderMeter, func(sim.Time) error { return nil }); err == nil {
		t.Fatal("want error for zero action interval")
	}
	if err := e.AddAction("bad", sim.Second, OrderMeter, nil); err == nil {
		t.Fatal("want error for nil action fn")
	}
}

// TestActionOrdering verifies that actions sharing a boundary fire in
// ascending (order, registration) sequence regardless of the order they
// were registered in, and that each firing receives the boundary time.
func TestActionOrdering(t *testing.T) {
	m := &scriptMachine{}
	e := newTestEngine(t, sim.Millisecond, m)
	var fired []string
	add := func(name string, order int) {
		if err := e.AddAction(name, 2*sim.Millisecond, order, func(now sim.Time) error {
			fired = append(fired, fmt.Sprintf("%s@%d", name, now))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("sampler", OrderSampler)
	add("meter", OrderMeter)
	add("agent-1", OrderAgents)
	add("agent-2", OrderAgents)
	if err := e.RunUntil(4 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"meter@2000", "agent-1@2000", "agent-2@2000", "sampler@2000",
		"meter@4000", "agent-1@4000", "agent-2@4000", "sampler@4000",
	}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("firing order:\n got %v\nwant %v", fired, want)
	}
}

// TestEventTieBreakAndAlignment verifies that events sharing an instant
// fire in scheduling order, and that an event scheduled mid-quantum fires
// at the start of the covering quantum, before the machine steps.
func TestEventTieBreakAndAlignment(t *testing.T) {
	m := &scriptMachine{}
	e := newTestEngine(t, sim.Millisecond, m)
	var fired []string
	e.Schedule(1500, func(now sim.Time) { fired = append(fired, fmt.Sprintf("a@%d", now)) })
	e.Schedule(1500, func(now sim.Time) { fired = append(fired, fmt.Sprintf("b@%d", now)) })
	e.Schedule(500, func(now sim.Time) { fired = append(fired, fmt.Sprintf("c@%d", now)) })
	if err := e.RunUntil(3 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// c (due 500) fires at the start of quantum 1000; a then b fire in
	// scheduling order at the start of quantum 2000.
	if want := []string{"c@500", "a@1500", "b@1500"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("event order: got %v want %v", fired, want)
	}
	// The machine stepped each quantum after the events already fired.
	if want := []string{"step@0", "step@1000", "step@2000"}; !reflect.DeepEqual(m.log, want) {
		t.Fatalf("steps: got %v want %v", m.log, want)
	}
}

// TestBatchOffersRespectHorizon verifies the engine never offers a batch
// that extends past the covering quantum of the next event or action
// boundary.
func TestBatchOffersRespectHorizon(t *testing.T) {
	m := &scriptMachine{batch: true}
	e := newTestEngine(t, sim.Millisecond, m)
	var boundaries []sim.Time
	if err := e.AddAction("meter", 7*sim.Millisecond, OrderMeter, func(now sim.Time) error {
		boundaries = append(boundaries, now)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.Schedule(4500, func(sim.Time) {})
	if err := e.RunUntil(30 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// First offer: event horizon at 4.5 ms -> 5 quanta from 0.
	if m.offers[0] != [2]int64{0, 5} {
		t.Fatalf("first offer: got %v want {0 5}", m.offers[0])
	}
	// No offer may cross the next meter boundary's covering quantum.
	for _, off := range m.offers {
		now, max := off[0], off[1]
		end := now + max*1000
		past := false
		for _, b := range []int64{7000, 14000, 21000, 28000} {
			if now < b && end > b {
				past = true
			}
		}
		if past {
			t.Fatalf("offer %v crosses an action boundary", off)
		}
	}
	if want := []sim.Time{7000, 14000, 21000, 28000}; !reflect.DeepEqual(boundaries, want) {
		t.Fatalf("meter boundaries: got %v want %v", boundaries, want)
	}
	if e.BatchedQuanta() == 0 {
		t.Fatal("batching never engaged")
	}
}

// TestBatchedMatchesStepped verifies a fully batching machine sees the
// same clock, fires the same actions at the same instants, and covers the
// same number of quanta as a machine stepping one quantum at a time.
func TestBatchedMatchesStepped(t *testing.T) {
	run := func(batch bool) (fired []string, quanta int64) {
		m := &scriptMachine{batch: batch}
		e := newTestEngine(t, sim.Millisecond, m)
		for _, a := range []struct {
			name     string
			interval sim.Time
			order    int
		}{{"meter", 3 * sim.Millisecond, OrderMeter}, {"sample", 10 * sim.Millisecond, OrderSampler}} {
			a := a
			if err := e.AddAction(a.name, a.interval, a.order, func(now sim.Time) error {
				fired = append(fired, fmt.Sprintf("%s@%d", a.name, now))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		e.Schedule(12300, func(now sim.Time) { fired = append(fired, fmt.Sprintf("ev@%d", now)) })
		if err := e.RunUntil(50 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return fired, e.BatchedQuanta() + e.SteppedQuanta()
	}
	bFired, bQuanta := run(true)
	sFired, sQuanta := run(false)
	if !reflect.DeepEqual(bFired, sFired) {
		t.Fatalf("action/event traces differ:\nbatched %v\nstepped %v", bFired, sFired)
	}
	if bQuanta != sQuanta {
		t.Fatalf("quanta differ: batched %d stepped %d", bQuanta, sQuanta)
	}
}

// sumSources totals every counter of a BoundarySources breakdown.
func sumSources(src map[string]int64) int64 {
	var total int64
	for _, v := range src {
		total += v
	}
	return total
}

// TestBoundarySourcesAttribution verifies the per-boundary-source
// breakdown: every RunUntil iteration is attributed to exactly one
// limiter, and the limiter named matches what actually bounded the
// horizon — the run target, a scheduled event, a periodic action, or the
// machine declining/shortening the batch.
func TestBoundarySourcesAttribution(t *testing.T) {
	t.Run("machine-declined", func(t *testing.T) {
		m := &scriptMachine{}
		e := newTestEngine(t, sim.Millisecond, m)
		if err := e.RunUntil(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		src := e.BoundarySources()
		// Nine offers declined; the final quantum's horizon is the
		// target itself, so no batch is attempted for it.
		if src["machine-declined"] != 9 || src["target"] != 1 {
			t.Fatalf("sources: %v", src)
		}
		if got := sumSources(src); got != 10 {
			t.Fatalf("iterations attributed: %d, want 10", got)
		}
	})
	t.Run("target", func(t *testing.T) {
		m := &scriptMachine{batch: true}
		e := newTestEngine(t, sim.Millisecond, m)
		if err := e.RunUntil(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if src := e.BoundarySources(); src["target"] != 1 || sumSources(src) != 1 {
			t.Fatalf("sources: %v", src)
		}
	})
	t.Run("action-and-event", func(t *testing.T) {
		m := &scriptMachine{batch: true}
		e := newTestEngine(t, sim.Millisecond, m)
		if err := e.AddAction("meter", 4*sim.Millisecond, OrderMeter, func(sim.Time) error {
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		e.Schedule(1500, func(sim.Time) {})
		if err := e.RunUntil(12 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		src := e.BoundarySources()
		// Horizon 1: the event at 1.5 ms (2 quanta). Then the action
		// boundaries at 4, 8 and 12 ms bound every later horizon; the
		// last boundary coincides with the target, and the earlier
		// source wins the tie.
		if src["event"] != 1 || src["action"] != 2 || src["target"] != 1 {
			t.Fatalf("sources: %v", src)
		}
		if got := sumSources(src); got != 4 {
			t.Fatalf("iterations attributed: %d, want 4", got)
		}
	})
	t.Run("machine-shortened", func(t *testing.T) {
		m := &scriptMachine{batch: true, shorten: true}
		e := newTestEngine(t, sim.Millisecond, m)
		if err := e.RunUntil(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		src := e.BoundarySources()
		// 10-quanta horizon batched as 9, then a 1-quantum horizon that
		// only the target bounds.
		if src["machine-shortened"] != 1 || src["target"] != 1 {
			t.Fatalf("sources: %v", src)
		}
		if e.BatchedQuanta() != 9 || e.SteppedQuanta() != 1 {
			t.Fatalf("batched %d stepped %d", e.BatchedQuanta(), e.SteppedQuanta())
		}
	})
}

// errMachine fails its nth step.
type errMachine struct {
	n    int
	step int
}

func (m *errMachine) Step(sim.Time) error {
	m.step++
	if m.step >= m.n {
		return errors.New("boom")
	}
	return nil
}

func (m *errMachine) BatchStep(sim.Time, int) (int, error) { return 0, nil }

func TestStepErrorPropagates(t *testing.T) {
	e := newTestEngine(t, sim.Millisecond, &errMachine{n: 3})
	if err := e.RunUntil(sim.Second); err == nil || err.Error() != "boom" {
		t.Fatalf("got %v, want boom", err)
	}
	if e.Now() != 2*sim.Millisecond {
		t.Fatalf("clock after failure: %v", e.Now())
	}
}

func TestRunParallel(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var results [64]int
		tasks := make([]func() error, 64)
		for i := range tasks {
			i := i
			tasks[i] = func() error { results[i] = i * i; return nil }
		}
		if err := RunParallel(workers, tasks); err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r != i*i {
				t.Fatalf("workers=%d: task %d not run", workers, i)
			}
		}
	}
	// First error in task order wins, regardless of scheduling.
	tasks := make([]func() error, 8)
	for i := range tasks {
		i := i
		tasks[i] = func() error { return fmt.Errorf("task %d", i) }
	}
	if err := RunParallel(4, tasks); err == nil || err.Error() != "task 0" {
		t.Fatalf("got %v, want task 0", err)
	}
	if err := RunParallel(4, nil); err != nil {
		t.Fatalf("empty task list: %v", err)
	}
}

func TestGate(t *testing.T) {
	if got := NewGate(0).Slots(); got != 1 {
		t.Errorf("NewGate(0).Slots() = %d, want clamp to 1", got)
	}
	g := NewGate(2)
	if g.Slots() != 2 {
		t.Fatalf("Slots() = %d, want 2", g.Slots())
	}
	g.Acquire()
	g.Acquire()
	// Both slots held: a third Acquire must block until a Release.
	acquired := make(chan struct{})
	go func() {
		g.Acquire()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("third Acquire succeeded with both slots held")
	case <-time.After(10 * time.Millisecond):
	}
	g.Release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("Acquire did not proceed after Release")
	}
	g.Release()
	g.Release()
}
