// Picompute: the Figure 1 experiment as an API walkthrough. A fixed
// CPU-bound job (the paper's pi approximation) is run at the maximum
// frequency under several credits, then at a reduced frequency under the
// equation-4 compensated credits; the pairs of execution times match.
package main

import (
	"fmt"
	"log"

	"pasched"
	"pasched/internal/metrics"
)

// measure runs the pi job in a VM with the given credit, with the
// processor pinned at freq, and returns the completion time in seconds.
func measure(freq pasched.Freq, creditPct, work float64) (float64, error) {
	sys, err := pasched.NewSystem(pasched.WithCreditScheduler())
	if err != nil {
		return 0, err
	}
	if err := sys.CPU().SetFreq(freq, 0); err != nil {
		return 0, err
	}
	v, err := sys.AddVM("pi", creditPct)
	if err != nil {
		return 0, err
	}
	job, err := pasched.NewPiApp(work)
	if err != nil {
		return 0, err
	}
	v.SetWorkload(job)
	for !job.Done() && sys.Now() < pasched.Hour {
		if err := sys.Run(pasched.Second); err != nil {
			return 0, err
		}
	}
	at, ok := job.CompletionTime()
	if !ok {
		return 0, fmt.Errorf("job did not finish")
	}
	return at.Seconds(), nil
}

func main() {
	prof := pasched.Optiplex755()
	const reduced = pasched.Freq(2133)
	ratio := float64(reduced) / float64(prof.Max())
	work := pasched.PiWorkFor(2667e6, 100, 10) // 10 full-CPU seconds

	tb := metrics.NewTable(
		"Compensation of a frequency reduction with a credit allocation (Fig. 1)",
		"initial credit (%)", "new credit (%)", "T @ 2667 MHz (s)", "T @ 2133 MHz compensated (s)")
	for _, credit := range []float64{10, 20, 30, 40, 50, 60, 70, 80} {
		tMax, err := measure(prof.Max(), credit, work)
		if err != nil {
			log.Fatal(err)
		}
		newCredit, err := pasched.CompensatedCredit(credit, ratio, 1)
		if err != nil {
			log.Fatal(err)
		}
		// A credit cannot exceed the whole machine; beyond ~80% initial
		// credit the compensation saturates (the divergence on the right
		// of the paper's Figure 1).
		granted := newCredit
		if granted > 100 {
			granted = 100
		}
		tComp, err := measure(reduced, granted, work)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(metrics.Fmt(credit, 0), metrics.Fmt(newCredit, 0),
			metrics.Fmt(tMax, 1), metrics.Fmt(tComp, 1))
	}
	fmt.Println(tb.Render())
	fmt.Println("The two time columns match: a credit of C/(ratio*cf) at the reduced")
	fmt.Println("frequency buys the same computing capacity as C at the maximum frequency.")
}
