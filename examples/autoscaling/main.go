// Autoscaling: the elastic loop closed over the observability spine.
// The same overloaded trace — VMs demanding ~95% of their credit,
// serving full-cost requests with no capacity headroom — runs three
// ways under PAS: static caps (the contracted credits, untouched),
// the queue policy (scale on serving queue depth alone), and the ditto
// policy (scale on the flight recorder's throttle-attribution ledger:
// grow only the VMs whose queues are *caused* by their own cap). The
// autoscaler may also spawn serving replicas once a VM's cap ceiling is
// reached, splitting the arrival stream across the group.
//
// The point of the comparison: static caps let throttled VMs queue
// without recourse; the elastic policies buy their tail latency back
// with modest extra energy, and ditto does it with fewer wasted
// actions because its trigger is the attributed cause, not the
// symptom.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"

	"pasched/internal/autoscale"
	"pasched/internal/fleet"
	"pasched/internal/metrics"
	"pasched/internal/sim"
	"pasched/internal/workload"
)

const (
	machines = 6
	arrivals = 120
	horizon  = 240 * sim.Second
	seed     = 31
)

func main() {
	trace, err := fleet.Generate(fleet.GenConfig{
		Seed:             seed,
		Arrivals:         arrivals,
		Horizon:          horizon,
		MeanLifetime:     120 * sim.Second,
		BaseActivity:     0.95,
		DiurnalAmplitude: 0.2,
		SegmentLen:       60 * sim.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Trace: %d VM lifecycles over %v on %d machines, ~95%% activity, full-cost requests — throttling turns into queueing.\n\n",
		len(trace.Events), horizon, machines)

	run := func(policy string) *fleet.Report {
		cfg := fleet.Config{
			Machines:    fleet.DefaultEstate(machines),
			UsePAS:      true,
			Policy:      fleet.NewBestFit(),
			ReportEvery: 2 * sim.Second,
			Seed:        seed,
			// Full-cost requests: service capacity equals attained CPU,
			// so a capped VM visibly queues. The default page cost gives
			// five-fold headroom, which would hide the throttling.
			Serving: fleet.ServingConfig{
				Enabled:     true,
				RequestCost: workload.DefaultRequestCost,
			},
			// The recorder feeds ditto's attribution trigger; on for all
			// three runs so the ledger columns stay comparable.
			Obs: fleet.ObsConfig{Enabled: true, Buffer: true},
		}
		if policy != "" {
			cfg.Autoscale = fleet.AutoscaleConfig{
				Enabled: true,
				Policy:  policy,
				Params: autoscale.Params{
					MaxCapPct:   60,
					MaxReplicas: 2,
					QueueHigh:   4,
					// A tenth of the interval spent cap-throttled (with
					// work queued) triggers growth; the default quarter
					// is tuned for coarser reporting intervals than the
					// 2 s used here.
					CappedHighPermille: 100,
				},
			}
		}
		fl, err := fleet.New(cfg, trace)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fl.Run(horizon)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	variants := []struct{ label, policy string }{
		{"static", ""},
		{"queue", "queue"},
		{"ditto", "ditto"},
	}
	reports := make(map[string]*fleet.Report, len(variants))
	tb := metrics.NewTable("Static caps vs the elastic loop (PAS, equal offered load):",
		"variant", "p50 (ms)", "p99 (ms)", "mean (ms)", "capped (s)", "energy (kJ)", "SLA",
		"resizes", "out/in", "rejected")
	for _, v := range variants {
		rep := run(v.policy)
		reports[v.label] = rep
		s := rep.Summary
		tb.AddRow(v.label,
			fmt.Sprintf("%.2f", s.ReqP50Ms),
			fmt.Sprintf("%.2f", s.ReqP99Ms),
			fmt.Sprintf("%.2f", s.ReqMeanMs),
			fmt.Sprintf("%.1f", float64(s.LedgerCappedUs)/1e6),
			fmt.Sprintf("%.1f", s.TotalJoules/1000),
			fmt.Sprintf("%.4f", s.OverallSLA),
			fmt.Sprintf("%d", s.AutoscaleResizes),
			fmt.Sprintf("%d/%d", s.AutoscaleScaleOuts, s.AutoscaleScaleIns),
			fmt.Sprintf("%d", s.AutoscaleRejected))
	}
	fmt.Println(tb.Render())

	st, qu, di := reports["static"].Summary, reports["queue"].Summary, reports["ditto"].Summary
	fmt.Printf("Ditto vs static caps: p99 %.2f -> %.2f ms (%.1fx) and capped time %.1f -> %.1f s for %.1f%% more energy.\n",
		st.ReqP99Ms, di.ReqP99Ms, st.ReqP99Ms/di.ReqP99Ms,
		float64(st.LedgerCappedUs)/1e6, float64(di.LedgerCappedUs)/1e6,
		(di.TotalJoules/st.TotalJoules-1)*100)
	fmt.Printf("Ditto vs queue: same loop, attributed trigger — %d actions against %d for p99 %.2f vs %.2f ms.\n\n",
		di.AutoscaleResizes+di.AutoscaleScaleOuts+di.AutoscaleScaleIns,
		qu.AutoscaleResizes+qu.AutoscaleScaleOuts+qu.AutoscaleScaleIns,
		di.ReqP99Ms, qu.ReqP99Ms)

	if err := writeFile("AUTOSCALING_intervals.csv", reports["ditto"].WriteCSV); err != nil {
		log.Fatal(err)
	}
	summaries := make(map[string]fleet.Summary, len(reports))
	for name, rep := range reports {
		summaries[name] = rep.Summary
	}
	if err := writeJSON("AUTOSCALING_summary.json", summaries); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Wrote AUTOSCALING_intervals.csv (ditto curves) and AUTOSCALING_summary.json.")
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeJSON(path string, summaries map[string]fleet.Summary) error {
	return writeFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(summaries)
	})
}
