// Fleet: the datacenter-scale consolidation scenario of Section 2.3,
// driven by a synthetic VM lifecycle trace. A heterogeneous estate of
// 1000 machines (three hardware classes with different frequency
// ladders, power curves and memory sizes) serves 5000 VM arrivals with
// diurnal demand and heavy-tailed lifetimes. The same trace runs under
// two placement policies (first-fit and the DVFS-aware packer) and two
// schedulers (PAS versus fix-credit pinned at maximum frequency),
// reporting cluster-level energy and SLA — the paper's claim, at fleet
// scale: DVFS with credit compensation saves energy without giving up
// the contractual CPU shares.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"

	"pasched/internal/fleet"
	"pasched/internal/metrics"
	"pasched/internal/sim"
)

const (
	machines = 1000
	arrivals = 5000
	horizon  = 600 * sim.Second
	seed     = 42
)

func main() {
	trace, err := fleet.Generate(fleet.GenConfig{
		Seed:     seed,
		Arrivals: arrivals,
		Horizon:  horizon,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Trace: %d VM lifecycles over %v across %d machines in 3 hardware classes.\n\n",
		len(trace.Events), horizon, machines)

	type runCfg struct {
		label  string
		policy fleet.Policy
		sched  string
	}
	runs := []runCfg{
		{"first-fit / fix-credit", fleet.NewFirstFit(), "credit"},
		{"first-fit / PAS", fleet.NewFirstFit(), "pas"},
		{"dvfs-aware / fix-credit", fleet.NewDVFSAware(), "credit"},
		{"dvfs-aware / PAS", fleet.NewDVFSAware(), "pas"},
	}

	tb := metrics.NewTable("Cluster-level outcome per configuration:",
		"configuration", "energy (kJ)", "mean power (W)", "mean active", "migrations",
		"overall SLA", "VMs <95% SLA")
	reports := make([]*fleet.Report, len(runs))
	for i, rc := range runs {
		fl, err := fleet.New(fleet.Config{
			Machines:         fleet.DefaultEstate(machines),
			Scheduler:        rc.sched,
			Policy:           rc.policy,
			ReportEvery:      30 * sim.Second,
			ConsolidateEvery: 120 * sim.Second,
			Seed:             seed,
		}, trace)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fl.Run(horizon)
		if err != nil {
			log.Fatal(err)
		}
		reports[i] = rep
		s := rep.Summary
		tb.AddRow(rc.label,
			fmt.Sprintf("%.0f", s.TotalJoules/1000),
			fmt.Sprintf("%.0f", s.MeanPowerW),
			fmt.Sprintf("%.1f", s.MeanActiveMachines),
			fmt.Sprintf("%d", s.Migrated),
			fmt.Sprintf("%.4f", s.OverallSLA),
			fmt.Sprintf("%d", s.VMsBelow95))
	}
	fmt.Println(tb.Render())

	ffFix, ffPAS := reports[0].Summary, reports[1].Summary
	daFix, daPAS := reports[2].Summary, reports[3].Summary
	fmt.Printf("PAS vs fix-credit energy saving: %.1f%% under first-fit, %.1f%% under dvfs-aware.\n",
		(1-ffPAS.TotalJoules/ffFix.TotalJoules)*100,
		(1-daPAS.TotalJoules/daFix.TotalJoules)*100)
	fmt.Printf("DVFS-aware vs first-fit placement (PAS): %.1f%% energy, SLA %.4f vs %.4f.\n\n",
		(1-daPAS.TotalJoules/ffPAS.TotalJoules)*100, daPAS.OverallSLA, ffPAS.OverallSLA)

	// The dvfs-aware/PAS interval curves and every summary go to disk,
	// mirroring what the CI job uploads as an artifact.
	if err := writeFile("FLEET_intervals.csv", reports[3].WriteCSV); err != nil {
		log.Fatal(err)
	}
	summaries := make([]fleet.Summary, len(reports))
	for i, rep := range reports {
		summaries[i] = rep.Summary
	}
	if err := writeJSON("FLEET_summary.json", summaries); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Wrote FLEET_intervals.csv (dvfs-aware/PAS curves) and FLEET_summary.json.")
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeJSON(path string, summaries []fleet.Summary) error {
	return writeFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(summaries)
	})
}
