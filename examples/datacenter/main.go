// Datacenter: the Section 2.3 context. A hosting center consolidates VMs
// onto as few machines as memory allows, switches the rest off, and then
// still runs DVFS (with PAS enforcing the credits) on the machines that
// remain — because memory-bound packing leaves their CPUs underloaded,
// consolidation and DVFS are complementary, not redundant.
package main

import (
	"fmt"
	"log"

	"pasched"
	"pasched/internal/consolidation"
	"pasched/internal/metrics"
)

func main() {
	machine := consolidation.HostSpec{
		MemoryMB: 8192,
		Profile:  pasched.Optiplex755(),
	}
	// A typical mixed estate: mostly idle services with contractual CPU
	// shares and real memory footprints.
	vms := []consolidation.VMSpec{
		{Name: "web-frontend", CreditPct: 30, MemoryMB: 3072, Activity: 0.9},
		{Name: "web-backend", CreditPct: 30, MemoryMB: 4096, Activity: 0.6},
		{Name: "database", CreditPct: 40, MemoryMB: 6144, Activity: 0.5},
		{Name: "batch", CreditPct: 20, MemoryMB: 2048, Activity: 1.0},
		{Name: "monitoring", CreditPct: 10, MemoryMB: 1024, Activity: 0.3},
		{Name: "build-ci", CreditPct: 25, MemoryMB: 4096, Activity: 0.2},
		{Name: "mail", CreditPct: 10, MemoryMB: 2048, Activity: 0.2},
		{Name: "backup", CreditPct: 15, MemoryMB: 3072, Activity: 0.1},
	}

	placement, err := consolidation.PackFFD(vms, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Consolidation: %d VMs packed onto %d machines (memory-bound FFD);\n",
		len(vms), placement.Hosts)
	fmt.Printf("machines beyond the %d placed ones are switched off.\n\n", placement.Hosts)

	const dur = 60 * pasched.Second
	baseline, err := consolidation.Simulate(placement, vms, machine, dur, false)
	if err != nil {
		log.Fatal(err)
	}
	withPAS, err := consolidation.Simulate(placement, vms, machine, dur, true)
	if err != nil {
		log.Fatal(err)
	}

	tbm := metrics.NewTable("Per-machine outcome over 60 s:",
		"machine", "VMs", "mean load (%)", "mean freq, PAS (MHz)", "J @ max freq", "J with PAS")
	for i := range withPAS.PerHost {
		b := baseline.PerHost[i]
		p := withPAS.PerHost[i]
		tbm.AddRow(
			fmt.Sprintf("m%d", i),
			fmt.Sprintf("%v", p.VMs),
			metrics.Fmt(p.MeanLoadPct, 1),
			metrics.Fmt(p.MeanFreqMHz, 0),
			metrics.Fmt(b.Joules, 0),
			metrics.Fmt(p.Joules, 0),
		)
	}
	fmt.Println(tbm.Render())
	saved := (baseline.TotalJoules - withPAS.TotalJoules) / baseline.TotalJoules * 100
	fmt.Printf("\nTotal: %.0f J at max frequency vs %.0f J with PAS — %.1f%% saved\n",
		baseline.TotalJoules, withPAS.TotalJoules, saved)
	fmt.Println("on machines that consolidation could not fill (memory was the bottleneck),")
	fmt.Println("while every VM keeps its contracted absolute CPU share.")

	dynamicPhase()
}

// dynamicPhase shows the live side of Section 2.3: the estate shrinks at
// night, the consolidation manager migrates the survivors together and
// powers machines off, and PAS keeps saving on what remains.
func dynamicPhase() {
	fmt.Println("\n--- Dynamic consolidation (live migration + power-off) ---")
	machine := consolidation.HostSpec{MemoryMB: 8192, Profile: pasched.Optiplex755()}
	dc, err := consolidation.NewDataCenter(machine, 4, true)
	if err != nil {
		log.Fatal(err)
	}
	// Four night-time services, one per machine (the daytime estate left
	// them spread out).
	for i := 0; i < 4; i++ {
		spec := consolidation.VMSpec{
			Name:      fmt.Sprintf("svc%d", i),
			CreditPct: 15,
			MemoryMB:  1500,
			Activity:  0.4,
		}
		if err := dc.Place(spec, i); err != nil {
			log.Fatal(err)
		}
	}
	if err := dc.EnableAutoConsolidation(5 * pasched.Second); err != nil {
		log.Fatal(err)
	}
	if err := dc.Run(90 * pasched.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 90 s: %d/%d machines still on, %d live migrations, %d powered off\n",
		dc.ActiveMachines(), dc.Machines(), dc.Migrations(), dc.AutoPoweredOff())
	fmt.Printf("energy consumed: %.0f J (machines switched off cost nothing;\n", dc.TotalJoules())
	fmt.Println("PAS keeps the surviving machine at a reduced frequency).")
}
