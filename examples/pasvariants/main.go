// Pasvariants: cap-based versus weight-based credit enforcement under
// the same DVFS policy. Both systems run the paper's Power-Aware
// Scheduler loop — at every 10 ms tick the frequency drops to the lowest
// level whose capacity absorbs the absolute load — but they enforce the
// customers' credits differently:
//
//   - PAS (the paper's contribution) compensates each VM's hard cap for
//     the reduced frequency, so a thrashing VM gets exactly its
//     contracted capacity and nothing more;
//   - PAS-credit2 (the ROADMAP follow-up enabled by the Credit2
//     certification) refreshes Credit2 weights from the contracted
//     credits instead: proportional sharing needs no frequency
//     compensation, but being work-conserving it lets a thrashing VM
//     absorb whatever capacity its neighbours leave idle.
//
// One overloaded customer (V20, offered 5x its 20% share) next to one
// lazy customer (V70, idle) makes the difference stark: caps hold V20 at
// 20% absolute while the host idles; weights hand V20 the idle slack,
// serving five times the work for correspondingly more energy.
package main

import (
	"fmt"
	"log"
	"os"

	"pasched"
	"pasched/internal/metrics"
)

const dur = 120 * pasched.Second

// run executes the scenario under one enforcement and reports V20's
// absolute load, the work served, the mean frequency and the energy.
func run(build func() (*pasched.System, error)) (absV20, served, freq, joules float64, err error) {
	sys, err := build()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	v20, err := sys.AddVM("V20", 20)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if _, err := sys.AddVM("V70", 70); err != nil {
		return 0, 0, 0, 0, err
	}
	// V20's customers hammer it at 5x its contracted capacity; V70's are
	// absent, so 70% of the machine is slack for the taking.
	maxTp := 2667e6
	wl, err := pasched.NewWebApp(pasched.WebAppConfig{
		Phases: []pasched.WebPhase{{
			Start: 0, End: dur,
			Rate: pasched.ExactRate(maxTp, 20, 0) * 5,
		}},
		MaxBacklog: -1,
		Seed:       7,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	v20.SetWorkload(wl)
	if err := sys.Run(dur); err != nil {
		return 0, 0, 0, 0, err
	}
	rec := sys.Recorder()
	absV20, _ = rec.Series("V20_absolute_pct").MeanBetween(10, 120)
	freq, _ = rec.Series("freq_mhz").MeanBetween(10, 120)
	return absV20, v20.WorkDone().Units(), freq, sys.Energy().Joules(), nil
}

func main() {
	configs := []struct {
		name  string
		build func() (*pasched.System, error)
	}{
		{"PAS (caps)", func() (*pasched.System, error) {
			return pasched.NewSystem(pasched.WithPAS())
		}},
		{"PAS-credit2 (weights)", func() (*pasched.System, error) {
			return pasched.NewSystem(pasched.WithPASCredit2())
		}},
	}
	tb := metrics.NewTable("Thrashing V20 (5x its 20% share) next to an idle V70, 120 s",
		"enforcement", "V20 absolute (%)", "V20 served work (units)", "mean freq (MHz)", "energy (J)")
	var capServed, weightServed float64
	for i, cfg := range configs {
		abs, served, freq, joules, err := run(cfg.build)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(cfg.name, metrics.Fmt(abs, 1), metrics.Fmt(served, 0),
			metrics.Fmt(freq, 0), metrics.Fmt(joules, 0))
		if i == 0 {
			capServed = served
		} else {
			weightServed = served
		}
	}
	fmt.Println(tb.Render())
	fmt.Printf("weight enforcement served %.1fx the capped work — the same DVFS policy,\n"+
		"opposite answers to \"may a customer exceed the share it paid for?\"\n",
		weightServed/capServed)
	if weightServed < capServed {
		fmt.Fprintln(os.Stderr, "unexpected: work-conserving enforcement served less than caps")
		os.Exit(1)
	}
}
