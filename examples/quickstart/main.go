// Quickstart: build a PAS-scheduled host, overload a 20%-credit VM while
// everything else idles, and watch PAS lower the frequency while raising
// the VM's enforced cap so its absolute capacity never drops below the
// contracted 20%.
package main

import (
	"fmt"
	"log"

	"pasched"
)

func main() {
	sys, err := pasched.NewSystem(pasched.WithPAS(), pasched.WithDom0())
	if err != nil {
		log.Fatal(err)
	}
	v20, err := sys.AddVM("V20", 20)
	if err != nil {
		log.Fatal(err)
	}
	v70, err := sys.AddVM("V70", 70)
	if err != nil {
		log.Fatal(err)
	}
	// V20 is overloaded; V70 is lazy — the paper's Scenario 1.
	v20.SetWorkload(pasched.CPUHog())

	if err := sys.Run(30 * pasched.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("After 30s with V20 thrashing and V70 lazy:")
	fmt.Printf("  processor frequency: %v (scaled down: host underloaded)\n", sys.CPU().Freq())
	cap20, err := sys.PAS().EffectiveCap(v20.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  V20 enforced cap:    %.1f%% (compensates the reduction; contract is 20%%)\n", cap20)
	abs, _ := sys.Recorder().Series("V20_absolute_pct").MeanBetween(5, 30)
	fmt.Printf("  V20 absolute load:   %.1f%% (the SLA holds at any frequency)\n", abs)
	fmt.Printf("  energy so far:       %.0f J (avg %.1f W)\n",
		sys.Energy().Joules(), sys.Energy().AveragePower())

	// Wake V70: the host saturates, PAS raises the frequency back and
	// returns the caps to their contracted values.
	v70.SetWorkload(pasched.CPUHog())
	if err := sys.Run(30 * pasched.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAfter 30 more seconds with V70 also thrashing:")
	fmt.Printf("  processor frequency: %v (host saturated)\n", sys.CPU().Freq())
	cap20, err = sys.PAS().EffectiveCap(v20.ID())
	if err != nil {
		log.Fatal(err)
	}
	cap70, err := sys.PAS().EffectiveCap(v70.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  enforced caps:       V20 %.1f%%, V70 %.1f%%\n", cap20, cap70)
}
