// Webhosting: the paper's hosting-provider scenario. Two customers buy
// fixed CPU shares (20% and 70%) for their web applications; one is
// overloaded while the other is lazy. The example runs the same offered
// load under the three schedulers the paper compares — Credit (fix
// credit), SEDF (variable credit) and PAS — and prints what each customer
// actually received and what the provider paid in energy.
package main

import (
	"fmt"
	"log"
	"os"

	"pasched"
	"pasched/internal/metrics"
)

// run executes the scenario under one configuration and reports V20's
// absolute load (the SLA view), V20's raw share of the machine, the mean
// frequency, and the energy drawn.
func run(build func() (*pasched.System, error)) (absV20, shareV20, freq, joules float64, err error) {
	sys, err := build()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	v20, err := sys.AddVM("V20", 20)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if _, err := sys.AddVM("V70", 70); err != nil {
		return 0, 0, 0, 0, err
	}
	// V20's customers hammer it (5x its capacity); V70's are absent.
	maxTp := 2667e6
	wl, err := pasched.NewWebApp(pasched.WebAppConfig{
		Phases: []pasched.WebPhase{{
			Start: 0, End: 120 * pasched.Second,
			Rate: pasched.ExactRate(maxTp, 20, 0) * 5,
		}},
		Seed: 7,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	v20.SetWorkload(wl)
	if err := sys.Run(120 * pasched.Second); err != nil {
		return 0, 0, 0, 0, err
	}
	rec := sys.Recorder()
	absV20, _ = rec.Series("V20_absolute_pct").MeanBetween(10, 120)
	shareV20, _ = rec.Series("V20_global_pct").MeanBetween(10, 120)
	freq, _ = rec.Series("freq_mhz").MeanBetween(10, 120)
	return absV20, shareV20, freq, sys.Energy().Joules(), nil
}

func main() {
	configs := []struct {
		name  string
		build func() (*pasched.System, error)
	}{
		{"Credit + ondemand (fix credit)", func() (*pasched.System, error) {
			return pasched.NewSystem(pasched.WithDom0(),
				pasched.WithCreditScheduler(), pasched.WithOndemandGovernor())
		}},
		{"SEDF + ondemand (variable credit)", func() (*pasched.System, error) {
			return pasched.NewSystem(pasched.WithDom0(),
				pasched.WithSEDFScheduler(), pasched.WithOndemandGovernor())
		}},
		{"PAS", func() (*pasched.System, error) {
			return pasched.NewSystem(pasched.WithDom0(), pasched.WithPAS())
		}},
	}

	tb := metrics.NewTable(
		"Overloaded V20 (bought 20%), lazy V70 (bought 70%), 120 s:",
		"configuration", "V20 absolute (%)", "V20 machine share (%)", "mean freq (MHz)", "energy (J)")
	for _, cfg := range configs {
		abs, share, freq, joules, err := run(cfg.build)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(cfg.name, metrics.Fmt(abs, 1), metrics.Fmt(share, 1),
			metrics.Fmt(freq, 0), metrics.Fmt(joules, 0))
	}
	fmt.Fprintln(os.Stdout, tb.Render())
	fmt.Println(`Reading the rows:
  Credit: the governor lowers the frequency (cheap) but V20 receives ~12%
          absolute instead of the 20% it bought - SLA violated.
  SEDF:   V20 receives far MORE than it bought and the frequency stays
          high - the provider gives capacity away and saves nothing.
  PAS:    V20 receives exactly 20% absolute at a reduced frequency - the
          only configuration that honours the SLA, at a fraction of
          SEDF's energy (slightly above Credit's bill only because it
          actually delivers the work Credit withheld).`)
}
