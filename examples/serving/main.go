// Serving: the request-level view of credit enforcement. Each VM in a
// deliberately contended estate carries an open-loop client population;
// reply latency derives from the VM's *attained* work rate, so the
// scheduler's enforcement policy becomes user-visible as percentiles.
// The same trace — identical offered request load — runs under the
// cap-enforcing schedulers (fix-credit, PAS) and the work-conserving
// ones (credit2, pas-credit2), head to head on a latency/energy front:
// caps and work conservation shape the latency distribution differently
// at equal load, and PAS buys its energy saving without giving up the
// enforced share.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"

	"pasched/internal/fleet"
	"pasched/internal/metrics"
	"pasched/internal/sim"
)

const (
	machines = 6
	arrivals = 120
	horizon  = 240 * sim.Second
	seed     = 31
)

func main() {
	// High base activity against a small estate: VMs demand ~90% of
	// their credit, so enforcement actually binds and the schedulers'
	// policies separate. A 2 s reporting interval keeps the serving
	// barriers (where attained work is folded into latencies) fine
	// enough to resolve the differences.
	trace, err := fleet.Generate(fleet.GenConfig{
		Seed:         seed,
		Arrivals:     arrivals,
		Horizon:      horizon,
		MeanLifetime: 120 * sim.Second,
		BaseActivity: 0.9,
		SegmentLen:   60 * sim.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Trace: %d VM lifecycles over %v on %d machines, ~90%% activity — enforcement binds.\n\n",
		len(trace.Events), horizon, machines)

	schedulers := []string{"credit", "pas", "credit2", "pas-credit2"}
	tb := metrics.NewTable("Request latency and energy per scheduler (equal offered load):",
		"scheduler", "offered", "completed", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)",
		"energy (kJ)", "SLA")
	reports := make(map[string]*fleet.Report, len(schedulers))
	for _, name := range schedulers {
		fl, err := fleet.New(fleet.Config{
			Machines:    fleet.DefaultEstate(machines),
			Scheduler:   name,
			Policy:      fleet.NewFirstFit(),
			ReportEvery: 2 * sim.Second,
			Seed:        seed,
			Serving:     fleet.ServingConfig{Enabled: true},
		}, trace)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fl.Run(horizon)
		if err != nil {
			log.Fatal(err)
		}
		reports[name] = rep
		s := rep.Summary
		tb.AddRow(name,
			fmt.Sprintf("%d", s.RequestsOffered),
			fmt.Sprintf("%d", s.RequestsCompleted),
			fmt.Sprintf("%.2f", s.ReqP50Ms),
			fmt.Sprintf("%.2f", s.ReqP95Ms),
			fmt.Sprintf("%.2f", s.ReqP99Ms),
			fmt.Sprintf("%.2f", s.ReqMeanMs),
			fmt.Sprintf("%.1f", s.TotalJoules/1000),
			fmt.Sprintf("%.4f", s.OverallSLA))
	}
	fmt.Println(tb.Render())

	credit, pas := reports["credit"].Summary, reports["pas"].Summary
	credit2 := reports["credit2"].Summary
	fmt.Printf("Cap-enforcing vs work-conserving at equal load: credit p50 %.2f ms vs credit2 %.2f ms (p99 %.2f vs %.2f).\n",
		credit.ReqP50Ms, credit2.ReqP50Ms, credit.ReqP99Ms, credit2.ReqP99Ms)
	fmt.Printf("PAS vs fix-credit: %.1f%% energy saving at p99 %.2f vs %.2f ms.\n\n",
		(1-pas.TotalJoules/credit.TotalJoules)*100, pas.ReqP99Ms, credit.ReqP99Ms)

	// Per-class latency under PAS: the class mix spans credit sizes, so
	// enforcement lands unevenly across them.
	ct := metrics.NewTable("Per-class reply latency (PAS):",
		"VM class", "requests", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)")
	for _, cl := range pas.ClassLatency {
		ct.AddRow(cl.Class,
			fmt.Sprintf("%d", cl.Requests),
			fmt.Sprintf("%.2f", cl.P50Ms),
			fmt.Sprintf("%.2f", cl.P95Ms),
			fmt.Sprintf("%.2f", cl.P99Ms),
			fmt.Sprintf("%.2f", cl.MeanMs))
	}
	fmt.Println(ct.Render())

	// The PAS interval curves (with the req_p* columns) and every
	// summary go to disk, mirroring the CI artifact.
	if err := writeFile("SERVING_intervals.csv", reports["pas"].WriteCSV); err != nil {
		log.Fatal(err)
	}
	summaries := make(map[string]fleet.Summary, len(reports))
	for name, rep := range reports {
		summaries[name] = rep.Summary
	}
	if err := writeJSON("SERVING_summary.json", summaries); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Wrote SERVING_intervals.csv (PAS curves) and SERVING_summary.json.")
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeJSON(path string, summaries map[string]fleet.Summary) error {
	return writeFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(summaries)
	})
}
